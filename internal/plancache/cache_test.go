package plancache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/verify"
)

// compileArtifact builds a small chain program whose structure varies with
// variant, so different variants get different fingerprints.
func compileArtifact(t testing.TB, variant int) (string, *plan.Artifact) {
	t.Helper()
	b := graph.NewBuilder()
	prev := graph.ObjID(-1)
	for i := 0; i < 6+variant%3; i++ {
		o := b.Object(fmt.Sprintf("d%d.%d", variant, i), int64(8+i))
		if prev >= 0 {
			b.Task(fmt.Sprintf("t%d.%d", variant, i), float64(10+i), []graph.ObjID{prev}, []graph.ObjID{o})
		} else {
			b.Task(fmt.Sprintf("t%d.%d", variant, i), float64(10+i), nil, []graph.ObjID{o})
		}
		prev = o
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched.CyclicOwners(g, 2)
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := sched.T3D()
	s, err := sched.ScheduleMPO(g, assign, 2, model)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := mem.NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	fp := plan.Fingerprint(g, []byte{byte(variant)})
	return fp, &plan.Artifact{Fingerprint: fp, Model: model, Capacity: s.TOT(), Schedule: s, Mem: mp}
}

func TestMemoryAndDiskTiers(t *testing.T) {
	dir := t.TempDir()
	m := trace.NewMetrics()
	c := New(Config{Dir: dir, Metrics: m})
	key, want := compileArtifact(t, 0)

	compiles := 0
	get := func() (*plan.Artifact, Source, error) {
		return c.GetOrCompile(key, func() (*plan.Artifact, error) {
			compiles++
			return want, nil
		})
	}
	art, src, err := get()
	if err != nil || src != SourceCompiled || art != want {
		t.Fatalf("first lookup: src=%v err=%v", src, err)
	}
	art, src, err = get()
	if err != nil || src != SourceMemory || art != want {
		t.Fatalf("second lookup: src=%v err=%v", src, err)
	}
	if compiles != 1 {
		t.Fatalf("compiled %d times", compiles)
	}
	// A fresh cache over the same directory serves from disk, and the
	// decoded artifact is structurally identical (same encoding).
	c2 := New(Config{Dir: dir, Metrics: m})
	art2, src, err := c2.GetOrCompile(key, func() (*plan.Artifact, error) {
		t.Fatal("unexpected recompilation")
		return nil, nil
	})
	if err != nil || src != SourceDisk {
		t.Fatalf("disk lookup: src=%v err=%v", src, err)
	}
	e1, _ := plan.Encode(want)
	e2, err := plan.Encode(art2)
	if err != nil {
		t.Fatal(err)
	}
	if string(e1) != string(e2) {
		t.Error("disk round trip changed the artifact")
	}
	if m.Get("plancache.hit.mem") != 1 || m.Get("plancache.hit.disk") != 1 || m.Get("plancache.miss") != 1 {
		t.Errorf("counters: %v", m.Snapshot())
	}
}

func TestEvictionUnderTinyBudget(t *testing.T) {
	m := trace.NewMetrics()
	key0, art0 := compileArtifact(t, 0)
	enc0, err := plan.Encode(art0)
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits roughly one entry: inserting a second must evict the
	// least recently used one.
	c := New(Config{MemBudget: int64(len(enc0)) + 16, Metrics: m})
	if err := c.Put(key0, art0); err != nil {
		t.Fatal(err)
	}
	key1, art1 := compileArtifact(t, 1)
	if err := c.Put(key1, art1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after eviction", c.Len())
	}
	if got := m.Get("plancache.evict"); got != 1 {
		t.Fatalf("evict counter = %d, want 1", got)
	}
	// The survivor is the newer entry; the older one misses.
	if _, src, _ := c.GetOrCompile(key1, nil); src != SourceMemory {
		t.Errorf("newest entry not in memory (src=%v)", src)
	}
	recompiled := false
	if _, src, err := c.GetOrCompile(key0, func() (*plan.Artifact, error) {
		recompiled = true
		return art0, nil
	}); err != nil || src != SourceCompiled || !recompiled {
		t.Errorf("evicted entry: src=%v err=%v recompiled=%v", src, err, recompiled)
	}
	// An entry bigger than the budget is still admitted (never thrash the
	// plan currently in use) but evicts everything else.
	c2 := New(Config{MemBudget: 1, Metrics: trace.NewMetrics()})
	if err := c2.Put(key0, art0); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatalf("oversized entry dropped (len=%d)", c2.Len())
	}
}

func TestCorruptDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	m := trace.NewMetrics()
	key, art := compileArtifact(t, 0)
	c := New(Config{Dir: dir, Metrics: m})
	if err := c.Put(key, art); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".rplan")
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)/2] ^= 0xff
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh cache (cold memory tier) must detect the corruption, drop
	// the entry and recompile.
	c2 := New(Config{Dir: dir, Metrics: m})
	recompiled := false
	got, src, err := c2.GetOrCompile(key, func() (*plan.Artifact, error) {
		recompiled = true
		return art, nil
	})
	if err != nil || src != SourceCompiled || !recompiled || got != art {
		t.Fatalf("corrupt entry: src=%v err=%v recompiled=%v", src, err, recompiled)
	}
	if m.Get("plancache.corrupt") != 1 {
		t.Errorf("corrupt counter = %d, want 1", m.Get("plancache.corrupt"))
	}
	// The store healed itself: the next cold lookup hits disk again.
	c3 := New(Config{Dir: dir, Metrics: m})
	if _, src, err := c3.GetOrCompile(key, nil); err != nil || src != SourceDisk {
		t.Errorf("after heal: src=%v err=%v", src, err)
	}
}

func TestSingleFlight(t *testing.T) {
	m := trace.NewMetrics()
	c := New(Config{Metrics: m})
	key, art := compileArtifact(t, 0)

	const waiters = 9
	var compiles atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompile(key, func() (*plan.Artifact, error) {
			compiles.Add(1)
			close(entered)
			<-release
			return art, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-entered
	// The compile is parked; everyone arriving now must share its flight.
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := c.GetOrCompile(key, func() (*plan.Artifact, error) {
				compiles.Add(1)
				return art, nil
			})
			if err != nil || got != art {
				t.Errorf("waiter: got=%v err=%v", got, err)
			}
		}()
	}
	// Wait until all waiters have registered on the flight, then release.
	deadline := time.Now().Add(10 * time.Second)
	for m.Get("plancache.shared") < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters registered", m.Get("plancache.shared"), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("compiled %d times, want 1", n)
	}
	if m.Get("plancache.miss") != 1 {
		t.Errorf("miss counter = %d, want 1", m.Get("plancache.miss"))
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	c := New(Config{})
	for _, key := range []string{"", "../escape", "ABCDEF", "deadbeef/../../x"} {
		if _, _, err := c.GetOrCompile(key, nil); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

// TestPoisonedDiskEntryRejected seeds the disk tier with a plan whose bytes
// are intact (checksum passes) but whose semantics are defective: the MAP
// allocations were stripped, so every volatile use is use-before-MAP. The
// cache must reject it via the static verifier and recompile instead of
// serving the poisoned plan.
func TestPoisonedDiskEntryRejected(t *testing.T) {
	dir := t.TempDir()
	m := trace.NewMetrics()
	key, art := compileArtifact(t, 0)
	poisoned := func() *plan.Artifact {
		_, a := compileArtifact(t, 0)
		for p := range a.Mem.Procs {
			for mi := range a.Mem.Procs[p].MAPs {
				a.Mem.Procs[p].MAPs[mi].Allocs = nil
				a.Mem.Procs[p].MAPs[mi].Notify = nil
			}
		}
		return a
	}()
	if res := verify.CheckArtifact(poisoned); res.OK() {
		t.Fatal("poisoned artifact unexpectedly verifies clean")
	}
	enc, err := plan.EncodeLenient(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".rplan")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Dir: dir, Metrics: m})
	recompiled := false
	got, src, err := c.GetOrCompile(key, func() (*plan.Artifact, error) {
		recompiled = true
		return art, nil
	})
	if err != nil || src != SourceCompiled || !recompiled || got != art {
		t.Fatalf("poisoned entry served: src=%v err=%v recompiled=%v", src, err, recompiled)
	}
	if m.Get("plancache.rejected") != 1 {
		t.Errorf("rejected counter = %d, want 1", m.Get("plancache.rejected"))
	}
	// The recompiled plan replaced the poisoned bytes on disk.
	c2 := New(Config{Dir: dir, Metrics: m})
	if _, src, err := c2.GetOrCompile(key, nil); err != nil || src != SourceDisk {
		t.Errorf("after heal: src=%v err=%v", src, err)
	}
}

// TestMiskeyedDiskEntryRejected stores a valid plan under the wrong
// fingerprint: content addressing must notice the stored fingerprint does
// not match the key.
func TestMiskeyedDiskEntryRejected(t *testing.T) {
	dir := t.TempDir()
	m := trace.NewMetrics()
	keyA, artA := compileArtifact(t, 0)
	_, artB := compileArtifact(t, 1)
	enc, err := plan.Encode(artB)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, keyA+".rplan"), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Dir: dir, Metrics: m})
	got, src, err := c.GetOrCompile(keyA, func() (*plan.Artifact, error) { return artA, nil })
	if err != nil || src != SourceCompiled || got != artA {
		t.Fatalf("mis-keyed entry served: src=%v err=%v", src, err)
	}
	if m.Get("plancache.rejected") != 1 {
		t.Errorf("rejected counter = %d, want 1", m.Get("plancache.rejected"))
	}
}
