// Package plancache caches compiled execution plans under their structural
// fingerprint (see internal/plan), so repeated executions of the same
// irregular structure skip the inspector phase entirely.
//
// The cache is two-tier:
//
//   - an in-memory LRU of decoded artifacts, bounded by the total encoded
//     size of the entries it holds, and
//   - an optional on-disk content-addressed store (one file per
//     fingerprint under a cache directory) that survives process restarts.
//
// Lookups are single-flight: concurrent requests for the same fingerprint
// compile once and share the result. Disk entries are statically verified
// on load (internal/verify); corrupted, unreadable, mis-keyed or
// semantically defective entries are deleted and fall back to
// recompilation — the cache can only ever trade time, never correctness.
//
// Counters are reported through a trace.Metrics registry:
//
//	plancache.hit.mem    lookups served from the in-memory LRU
//	plancache.hit.disk   lookups decoded from the disk store
//	plancache.miss       lookups that had to compile
//	plancache.evict      entries evicted from the LRU
//	plancache.corrupt    disk entries dropped as corrupted/unreadable
//	plancache.rejected   disk entries dropped by the static verifier
//	plancache.shared     lookups that piggybacked on an in-flight compile
package plancache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/iofault"
	"repro/internal/plan"
	"repro/internal/trace"
	"repro/internal/verify"
)

// DefaultMemBudget bounds the in-memory tier when Config.MemBudget is 0:
// 256 MiB of encoded-artifact bytes.
const DefaultMemBudget = 256 << 20

// Source says where a cached plan came from.
type Source string

const (
	// SourceMemory means the plan was served from the in-memory LRU.
	SourceMemory Source = "memory"
	// SourceDisk means the plan was decoded from the on-disk store.
	SourceDisk Source = "disk"
	// SourceCompiled means the plan was compiled on this lookup.
	SourceCompiled Source = "compiled"
)

// Config configures a Cache.
type Config struct {
	// Dir is the on-disk store directory. Empty disables the disk tier.
	Dir string
	// MemBudget bounds the in-memory tier by the total encoded size of its
	// entries, in bytes (0: DefaultMemBudget; negative: no in-memory tier).
	MemBudget int64
	// Metrics receives the counters listed in the package comment (nil:
	// counters are discarded).
	Metrics *trace.Metrics
	// FS is the filesystem seam for the disk tier; nil means the real OS.
	// Fault-injection tests pass an iofault.FaultFS here.
	FS iofault.FS
}

// Cache is a two-tier plan cache. It is safe for concurrent use.
type Cache struct {
	dir     string
	budget  int64
	metrics *trace.Metrics
	fs      iofault.FS
	group   Group // single-flight over fills (disk load or compile)

	mu      sync.Mutex
	entries map[string]*list.Element // fingerprint -> lru element
	lru     *list.List               // front = most recent
	bytes   int64
}

type entry struct {
	key  string
	art  *plan.Artifact
	size int64
}

// fillResult is what one fill flight produces, shared among coalesced
// lookups through the Group.
type fillResult struct {
	art *plan.Artifact
	src Source
}

// New creates a cache. If a directory is configured it is created on
// demand; a failure to create it surfaces on first disk write.
func New(cfg Config) *Cache {
	budget := cfg.MemBudget
	if budget == 0 {
		budget = DefaultMemBudget
	}
	fs := cfg.FS
	if fs == nil {
		fs = iofault.OS{}
	}
	return &Cache{
		dir:     cfg.Dir,
		budget:  budget,
		metrics: cfg.Metrics,
		fs:      fs,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// GetOrCompile returns the artifact for the fingerprint key, trying the
// in-memory tier, then the disk tier, then the compile callback. Concurrent
// calls with the same key share one compilation. The compiled artifact is
// stored in both tiers before being returned.
//
// The returned Source reports which tier satisfied this call; callers that
// piggybacked on another caller's in-flight compilation observe
// SourceCompiled as well.
func (c *Cache) GetOrCompile(key string, compile func() (*plan.Artifact, error)) (*plan.Artifact, Source, error) {
	if err := validKey(key); err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		art := el.Value.(*entry).art
		c.mu.Unlock()
		c.metrics.Inc("plancache.hit.mem", 1)
		return art, SourceMemory, nil
	}
	c.mu.Unlock()

	v, _, err := c.group.DoNotify(key, func() (any, error) {
		art, src, err := c.fill(key, compile)
		if err != nil {
			return nil, err
		}
		return fillResult{art: art, src: src}, nil
	}, func() { c.metrics.Inc("plancache.shared", 1) })
	if err != nil {
		return nil, SourceCompiled, err
	}
	res := v.(fillResult)
	return res.art, res.src, nil
}

// fill resolves a miss of the in-memory tier: disk, then compilation.
func (c *Cache) fill(key string, compile func() (*plan.Artifact, error)) (*plan.Artifact, Source, error) {
	if art, enc := c.loadDisk(key); art != nil {
		c.insertMem(key, art, int64(len(enc)))
		c.metrics.Inc("plancache.hit.disk", 1)
		return art, SourceDisk, nil
	}
	c.metrics.Inc("plancache.miss", 1)
	art, err := compile()
	if err != nil {
		return nil, SourceCompiled, err
	}
	enc, err := plan.Encode(art)
	if err != nil {
		return nil, SourceCompiled, fmt.Errorf("plancache: encoding compiled plan: %w", err)
	}
	if err := c.storeDisk(key, enc); err != nil {
		// A full or read-only disk must not fail the computation.
		c.metrics.Inc("plancache.diskerror", 1)
	}
	c.insertMem(key, art, int64(len(enc)))
	return art, SourceCompiled, nil
}

// Put inserts a pre-compiled artifact under the key (both tiers).
func (c *Cache) Put(key string, art *plan.Artifact) error {
	if err := validKey(key); err != nil {
		return err
	}
	enc, err := plan.Encode(art)
	if err != nil {
		return err
	}
	if err := c.storeDisk(key, enc); err != nil {
		c.metrics.Inc("plancache.diskerror", 1)
	}
	c.insertMem(key, art, int64(len(enc)))
	return nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the encoded size held by the in-memory tier.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *Cache) insertMem(key string, art *plan.Artifact, size int64) {
	if c.budget < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.bytes += size - el.Value.(*entry).size
		el.Value.(*entry).art = art
		el.Value.(*entry).size = size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&entry{key: key, art: art, size: size})
		c.bytes += size
	}
	// Evict from the back until within budget; the entry just inserted is
	// at the front and survives even if it alone exceeds the budget (a
	// cache that cannot hold the current working plan would only thrash).
	for c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.metrics.Inc("plancache.evict", 1)
	}
}

// loadDisk reads, decodes and statically verifies the disk entry for key.
// Corrupted entries are removed; entries that decode but fail verification
// (a poisoned plan: the bytes are intact, the semantics are not) are
// likewise evicted so the caller falls back to recompilation. Returns
// (nil, nil) when the disk tier misses.
func (c *Cache) loadDisk(key string) (*plan.Artifact, []byte) {
	if c.dir == "" {
		return nil, nil
	}
	path := c.path(key)
	enc, err := c.fs.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.metrics.Inc("plancache.corrupt", 1)
			c.fs.Remove(path)
		}
		return nil, nil
	}
	// Lenient decode: semantic defects are the verifier's to report (and
	// count) rather than surfacing as a bare decode error.
	art, err := plan.DecodeLenient(enc)
	if err != nil {
		c.metrics.Inc("plancache.corrupt", 1)
		c.fs.Remove(path)
		return nil, nil
	}
	if art.Fingerprint != key {
		c.metrics.Inc("plancache.rejected", 1)
		c.fs.Remove(path)
		return nil, nil
	}
	if res := verify.CheckArtifact(art); !res.OK() {
		c.metrics.Inc("plancache.rejected", 1)
		c.fs.Remove(path)
		return nil, nil
	}
	return art, enc
}

// storeDisk writes the encoded artifact atomically (temp file + rename) so
// a crash can never leave a half-written entry under the final name.
func (c *Cache) storeDisk(key string, enc []byte) error {
	if c.dir == "" {
		return nil
	}
	if err := c.fs.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	tmp, err := c.fs.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		return err
	}
	return c.fs.Rename(tmp.Name(), c.path(key))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".rplan")
}

// validKey restricts keys to the hex fingerprints produced by
// plan.Fingerprint; anything else could escape the cache directory.
func validKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("plancache: invalid key %q", key)
	}
	for _, r := range key {
		if !strings.ContainsRune("0123456789abcdef", r) {
			return fmt.Errorf("plancache: invalid key %q (want lowercase hex)", key)
		}
	}
	return nil
}
