package plancache

import "sync"

// Group is a duplicate-call suppressor ("single-flight"): concurrent Do
// calls with an equal key run the function once and share its result. It
// is the coalescing mechanism behind the Cache's compile deduplication,
// exported so other serving layers can coalesce their own idempotent work
// — rapidd uses a Group to share one execution among identical in-flight
// solve requests.
//
// Unlike golang.org/x/sync/singleflight (which this module must not
// depend on), results are not retained after the flight lands: a call
// arriving after the last sharer returned runs the function again. Pair a
// Group with a cache when results should persist.
//
// The zero value is ready to use.
type Group struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn once per key at a time. The first caller for a key executes
// fn; callers that arrive while it runs block and receive the same (val,
// err) with shared = true. fn runs without any Group lock held, so
// distinct keys proceed in parallel.
//
// A panic in fn propagates to the first caller; sharers are then released
// with a nil result rather than deadlocked.
func (g *Group) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	return g.DoNotify(key, fn, nil)
}

// DoNotify is Do with an attach hook: onAttach (may be nil) fires
// synchronously when this caller joins another caller's in-flight
// execution, before blocking on its result. Counters that mean "requests
// currently coalesced onto a flight" need the hook: by the time Do
// returns shared=true, the flight has already landed.
func (g *Group) DoNotify(key string, fn func() (any, error), onAttach func()) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if fl, ok := g.flights[key]; ok {
		g.mu.Unlock()
		if onAttach != nil {
			onAttach()
		}
		<-fl.done
		return fl.val, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	g.flights[key] = fl
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = fn()
	return fl.val, false, fl.err
}

// Inflight reports whether a flight for key is currently executing.
func (g *Group) Inflight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.flights[key]
	return ok
}
