package plancache

import (
	"syscall"
	"testing"

	"repro/internal/iofault"
	"repro/internal/plan"
	"repro/internal/trace"
)

// TestDiskTierFaultsNeverFailComputation drives the disk tier through an
// injected-EIO filesystem: stores fail, loads fail, the tier is
// effectively dead — and every lookup must still return a correct
// artifact via compilation, with the failures counted, not surfaced.
func TestDiskTierFaultsNeverFailComputation(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	ffs.Break(iofault.ClassDurability, syscall.EIO)
	m := trace.NewMetrics()
	c := New(Config{Dir: dir, Metrics: m, FS: ffs})

	key, want := compileArtifact(t, 0)
	got, src, err := c.GetOrCompile(key, func() (*plan.Artifact, error) { return want, nil })
	if err != nil || got != want || src != SourceCompiled {
		t.Fatalf("GetOrCompile under dead disk = %v, %v, %v", got, src, err)
	}
	if m.Get("plancache.diskerror") == 0 {
		t.Fatalf("disk store failure not counted")
	}
	// The artifact still landed in the memory tier.
	if _, src, err := c.GetOrCompile(key, func() (*plan.Artifact, error) {
		t.Fatalf("recompiled despite memory hit")
		return nil, nil
	}); err != nil || src != SourceMemory {
		t.Fatalf("memory tier lookup = %v, %v", src, err)
	}

	// Disk comes back: a fresh cache instance (cold memory tier) stores
	// and loads from disk again.
	ffs.Heal()
	c2 := New(Config{Dir: dir, Metrics: m, FS: ffs})
	if _, src, err := c2.GetOrCompile(key, func() (*plan.Artifact, error) { return want, nil }); err != nil || src != SourceCompiled {
		t.Fatalf("post-heal fill = %v, %v", src, err)
	}
	c3 := New(Config{Dir: dir, Metrics: m, FS: ffs})
	if _, src, err := c3.GetOrCompile(key, func() (*plan.Artifact, error) {
		t.Fatalf("recompiled despite disk entry")
		return nil, nil
	}); err != nil || src != SourceDisk {
		t.Fatalf("post-heal disk lookup = %v, %v", src, err)
	}
}

// TestDiskTierReadFaultFallsBack: an EIO on read (not a missing file)
// counts as corruption and falls back to compilation.
func TestDiskTierReadFaultFallsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := iofault.NewFaultFS(nil, iofault.Plan{})
	m := trace.NewMetrics()
	key, want := compileArtifact(t, 1)

	// Populate the disk entry with a healthy FS.
	warm := New(Config{Dir: dir, Metrics: m, FS: ffs})
	if _, _, err := warm.GetOrCompile(key, func() (*plan.Artifact, error) { return want, nil }); err != nil {
		t.Fatalf("warm fill: %v", err)
	}

	ffs.Break(iofault.ClassRead, syscall.EIO)
	cold := New(Config{Dir: dir, Metrics: m, FS: ffs})
	recompiled := false
	got, src, err := cold.GetOrCompile(key, func() (*plan.Artifact, error) {
		recompiled = true
		return want, nil
	})
	if err != nil || got != want || src != SourceCompiled || !recompiled {
		t.Fatalf("read-fault lookup = %v, %v, recompiled=%v, err=%v", got, src, recompiled, err)
	}
	if m.Get("plancache.corrupt") == 0 {
		t.Fatalf("read fault not counted as corruption")
	}
}
