package plancache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupCoalesces: N concurrent Do calls with one key run fn once;
// exactly one caller reports shared=false and all see the same result.
func TestGroupCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var leaders atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do("k", func() (any, error) {
				calls.Add(1)
				<-gate // hold the flight open until all callers joined
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if v != 42 {
				t.Errorf("Do returned %v, want 42", v)
			}
			if !shared {
				leaders.Add(1)
			}
		}()
	}
	// Wait until the flight is registered, then give sharers a moment to
	// attach before releasing it.
	for !g.Inflight("k") {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d callers saw shared=false, want exactly 1", got)
	}
	if g.Inflight("k") {
		t.Fatal("flight not cleared after landing")
	}
}

// TestGroupDistinctKeysRunConcurrently: two keys must not serialize.
func TestGroupDistinctKeysRunConcurrently(t *testing.T) {
	var g Group
	aStarted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Do("a", func() (any, error) {
			close(aStarted)
			<-release
			return nil, nil
		})
	}()
	<-aStarted
	// If keys serialized, this would deadlock (a's flight never releases).
	if _, shared, err := g.Do("b", func() (any, error) { return "b", nil }); shared || err != nil {
		t.Fatalf("key b: shared=%v err=%v", shared, err)
	}
	close(release)
	<-done
}

// TestGroupSharesErrors: sharers receive the flight's error; a later call
// retries (nothing is memoized).
func TestGroupSharesErrors(t *testing.T) {
	var g Group
	wantErr := errors.New("boom")
	_, shared, err := g.Do("k", func() (any, error) { return nil, wantErr })
	if shared || !errors.Is(err, wantErr) {
		t.Fatalf("first call: shared=%v err=%v", shared, err)
	}
	v, shared, err := g.Do("k", func() (any, error) { return 7, nil })
	if shared || err != nil || v != 7 {
		t.Fatalf("retry after error: v=%v shared=%v err=%v", v, shared, err)
	}
}

// TestGroupSequentialCallsRunEachTime: Do is a coalescer, not a cache.
func TestGroupSequentialCallsRunEachTime(t *testing.T) {
	var g Group
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() (any, error) {
			calls++
			return fmt.Sprintf("r%d", calls), nil
		})
		if shared || err != nil {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
		if want := fmt.Sprintf("r%d", i+1); v != want {
			t.Fatalf("call %d returned %v, want %v", i, v, want)
		}
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}
