package exec

import (
	"math"
	"testing"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/util"
)

func cholProblem(t *testing.T, p, bs int, seed uint64) *chol.Problem {
	t.Helper()
	rng := util.NewRNG(seed)
	m := sparse.AddRandomSymLinks(sparse.Grid2D(7, 6, true), 6, rng)
	m = m.PermuteSym(sparse.RCM(m))
	m = sparse.SPDValues(m, rng)
	pr, err := chol.Build(m, chol.Options{Procs: p, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func scheduleFor(t *testing.T, g *graph.DAG, p int, h sched.Heuristic) *sched.Schedule {
	t.Helper()
	assign, err := sched.OwnerComputeAssign(g, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runNumeric(t *testing.T, pr *chol.Problem, s *sched.Schedule, capacity int64) *Result {
	t.Helper()
	plan, err := mem.NewPlan(s, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Executable {
		t.Fatalf("plan not executable at capacity %d (MinMem %d)", capacity, s.MinMem())
	}
	res, err := Run(s, plan, Config{
		Kernel:       pr.Kernel,
		Init:         pr.InitObject,
		BlockTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCholeskyConcurrentMatchesSequential(t *testing.T) {
	for _, p := range []int{2, 4} {
		for _, h := range []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS} {
			pr := cholProblem(t, p, 5, 7)
			s := scheduleFor(t, pr.G, p, h)
			res := runNumeric(t, pr, s, s.TOT())
			want, err := pr.SequentialFactor()
			if err != nil {
				t.Fatal(err)
			}
			for oi := range pr.G.Objects {
				o := graph.ObjID(oi)
				got := res.Perm[o]
				ref := want[o]
				for i := range ref {
					if math.Abs(got[i]-ref[i]) > 1e-9 {
						t.Fatalf("p=%d %v: object %q differs at %d: %v vs %v",
							p, h, pr.G.Objects[oi].Name, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func TestCholeskyUnderTightMemory(t *testing.T) {
	pr := cholProblem(t, 4, 4, 9)
	s := scheduleFor(t, pr.G, 4, sched.MPO)
	// Tightest capacity the schedule admits.
	capacity := s.MinMem()
	res := runNumeric(t, pr, s, capacity)
	total := 0
	for _, m := range res.MAPsExecuted {
		total += m
	}
	if total <= 4 {
		t.Fatalf("tight memory should force extra MAPs, got %d", total)
	}
	for p, peak := range res.PeakUnits {
		if peak > capacity {
			t.Fatalf("proc %d peak %d exceeds capacity %d", p, peak, capacity)
		}
	}
	// Results must still be correct.
	want, err := pr.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	for oi := range pr.G.Objects {
		o := graph.ObjID(oi)
		for i := range want[o] {
			if math.Abs(res.Perm[o][i]-want[o][i]) > 1e-9 {
				t.Fatalf("object %q differs under tight memory", pr.G.Objects[oi].Name)
			}
		}
	}
}

func TestLUConcurrentSolves(t *testing.T) {
	rng := util.NewRNG(31)
	a := sparse.UnsymValues(sparse.AddRandomUnsymLinks(sparse.Grid2D(6, 6, false), 10, rng), rng)
	pr, err := lu.Build(a, lu.Options{Procs: 3, BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduleFor(t, pr.G, 3, sched.MPO)
	plan, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Executable {
		t.Fatalf("not executable at MinMem")
	}
	res, err := Run(s, plan, Config{
		Kernel: pr.Kernel,
		Init:   pr.InitObject,
		BufLen: pr.BufLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Solve with the concurrently factored panels.
	n := a.N
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		vals := a.ColVal(j)
		for k, i := range a.Col(j) {
			b[i] += vals[k] * xTrue[j]
		}
	}
	x := pr.Solve(res.Perm, b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-7 {
			t.Fatalf("solve error at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestStructureOnlyRandomStress(t *testing.T) {
	rng := util.NewRNG(77)
	for trial := 0; trial < 30; trial++ {
		p := 2 + rng.Intn(5)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(60), 8+rng.Intn(15), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.Unit(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		capacity := s.MinMem() // tightest feasible
		plan, err := mem.NewPlan(s, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Executable {
			// MinMem assumes immediate frees; the MAP scheme frees only at
			// MAPs, so a small slack can be needed. Retry with TOT.
			plan, err = mem.NewPlan(s, s.TOT())
			if err != nil || !plan.Executable {
				t.Fatalf("trial %d: TOT plan must be executable", trial)
			}
		}
		res, err := Run(s, plan, Config{BlockTimeout: 20 * time.Second})
		if err != nil {
			t.Fatalf("trial %d (p=%d, %v): %v", trial, p, h, err)
		}
		for q := 0; q < p; q++ {
			if res.MAPsExecuted[q] != len(plan.Procs[q].MAPs) {
				t.Fatalf("trial %d: proc %d executed %d MAPs, plan has %d",
					trial, q, res.MAPsExecuted[q], len(plan.Procs[q].MAPs))
			}
		}
	}
}

func TestNonExecutablePlanRejected(t *testing.T) {
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mem.NewPlan(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Executable {
		t.Fatalf("capacity 3 should not be executable")
	}
	if _, err := Run(s, plan, Config{}); err == nil {
		t.Fatalf("Run must reject non-executable plans")
	}
}

// randomOwnerComputeDAG builds a random single-writer DAG with cyclic
// owners (mirrors the sched/mem test helper).
func randomOwnerComputeDAG(rng *util.RNG, nTasks, nObjs, p int) *graph.DAG {
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, nObjs)
	for i := 0; i < nObjs; i++ {
		objs[i] = b.Object(string(rune('A'+i%26))+string(rune('0'+i/26)), int64(1+rng.Intn(4)))
	}
	written := []graph.ObjID{}
	for t := 0; t < nTasks; t++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		wobj := objs[rng.Intn(nObjs)]
		b.Task(string(rune('a'+t%26))+string(rune('0'+t/26)), float64(1+rng.Intn(5)), reads, []graph.ObjID{wobj})
		written = append(written, wobj)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	sched.CyclicOwners(g, p)
	return g
}
