// Package exec is the wall-clock backend of the five-state execution
// protocol: it runs a scheduled task graph under the active memory
// management scheme with one goroutine per (virtual) processor, real data
// and the real RMA substrate (deposit-then-flag buffers, single-slot
// address packages, panics on Puts into freed memory).
//
// The protocol transitions themselves — REC/EXE/SND/MAP/END, the MAP
// address-package handshake, the suspended-send queue, arrival-threshold
// receives and the RA/CQ polling discipline — live in internal/proto's
// Engine/Core and are shared verbatim with the discrete-event simulator
// (internal/machine). This package supplies only the wall-clock mechanics:
// goroutines, rma.Memory arenas, atomic control-signal counters and a
// liveness watchdog. The executor is used both as a correctness harness
// (results must equal a sequential execution; runs under -race) and as the
// numeric engine of the examples.
//
// The executor is event-driven: a processor whose Advance returns Blocked
// parks on its wake channel instead of spinning. Every remote deposit —
// data Put, control signal, address-package deposit, slot consumption —
// posts the destination processor's wake token at the deposit site, and
// retransmission/fault timers registered through the Backend's WakeAfter
// contract land on a single timer wheel. A parked processor therefore
// costs no CPU, which is what keeps oversubscribed runs (more emulated
// processors than cores) from collapsing.
package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/rma"
	"repro/internal/sched"
)

// KernelFunc executes a task against its object buffers. get returns the
// local buffer of any object the task reads or writes.
type KernelFunc func(t graph.TaskID, get func(graph.ObjID) []float64) error

// InitFunc fills a permanent object's buffer with its initial value.
type InitFunc func(o graph.ObjID, buf []float64)

// Config controls a run.
type Config struct {
	// Kernel runs each task. nil runs the protocol structure-only (no
	// numeric payloads are allocated or copied).
	Kernel KernelFunc
	// Init initializes permanent objects on their owners (numeric mode).
	Init InitFunc
	// BufLen overrides the physical buffer length of an object (defaults to
	// the object's abstract Size). Only consulted in numeric mode.
	BufLen func(o graph.ObjID) int64
	// BlockTimeout aborts the run when a processor makes no protocol
	// progress — no task or MAP completed, no message sent, received or
	// dispatched from the suspended queue — for this long. It is the
	// liveness watchdog: a genuine deadlock (which Theorem 1 rules out for
	// correct plans) or a lost message trips it instead of hanging the
	// process. 0 means the 30-second default; raise it when a single
	// kernel invocation may legitimately run longer than that.
	BlockTimeout time.Duration
	// OnStall, if set, is called exactly once, just before the first
	// watchdog timeout error is reported. Tests use it as an event hook to
	// release deliberately wedged kernels the moment the watchdog has
	// observed the stall, instead of sleeping for a fixed multiple of
	// BlockTimeout and hoping the schedules interleave.
	OnStall func()
	// Faults injects deterministic protocol perturbations (delayed address
	// packages and data messages); see proto.Faults. The zero value
	// disables injection.
	Faults proto.Faults
}

// Result reports a completed run.
type Result struct {
	// MAPsExecuted is the number of MAPs each processor performed.
	MAPsExecuted []int
	// PeakUnits is the per-processor peak memory in use (abstract units).
	PeakUnits []int64
	// Perm maps every object to its final buffer on its owner (numeric
	// mode; nil otherwise).
	Perm map[graph.ObjID][]float64
	// Occupancy is the wall-clock seconds each processor spent in each
	// protocol state (indexed by proto.State).
	Occupancy []proto.Occupancy
	// SuspendedSends counts, per processor, the data messages that went
	// through the suspended-send queue.
	SuspendedSends []int
	// Messages is the machine-wide number of data messages delivered
	// (excluding injected duplicates, which receivers discard).
	Messages int
	// AddrPackages is the machine-wide number of address packages consumed,
	// net of discarded duplicates.
	AddrPackages int
	// Reliability is the per-processor ack/retransmit summary (sender-side
	// counters plus the duplicate deliveries that processor discarded).
	Reliability []proto.Reliability
	// BlockedAdvances is the per-processor count of Advance calls that
	// returned Blocked — the executor's spin metric. Parked processors are
	// re-examined only after a wake token or timer, so the count stays
	// within a small multiple of the machine's event count; a busy-polling
	// executor shows counts proportional to wall time instead. The value is
	// timing-dependent and is NOT part of the backend-equivalence
	// comparison.
	BlockedAdvances []int
}

// procProbe is one processor's watchdog-visible gauge set. It is written
// only by that processor's own goroutine and read by whichever processor
// trips the BlockTimeout watchdog, so a stall report can dump the whole
// machine's protocol state, not just the blocked processor's.
type procProbe struct {
	state   atomic.Int32 // proto.State last entered
	pos     atomic.Int32 // position in the task order
	susp    atomic.Int32 // suspended-send queue depth
	retrans atomic.Int32 // queued messages awaiting a retransmission timer
	wait    atomic.Int32 // proto.WaitKind of the last Blocked verdict
	parked  atomic.Bool  // true while sleeping on the wake channel
	done    atomic.Bool
	// The probes are updated on every Advance; pad to a cache line so
	// neighbouring processors' stores do not false-share.
	_ [64 - 22]byte
}

// storeChanged stores v only on change: the common case (re-entering one
// protocol state) then costs plain loads of an uncontended cache line
// instead of locked stores.
func storeChanged(g *atomic.Int32, v int32) {
	if g.Load() != v {
		g.Store(v)
	}
}

// waker is one processor's wake signal: a one-token channel. Deposit sites
// post the token with a non-blocking send; the owning processor consumes
// it when parking. The token is permission to re-examine the protocol
// state, not a message: posting to an awake processor leaves the token for
// its next park, so a deposit racing with the park decision is never lost
// — the deposit's store happens before the post, and a token posted after
// the processor's last Poll makes its park return immediately. A stale
// token costs one spurious Advance, which is harmless. Padded to a cache
// line so neighbouring processors' wakes do not false-share (the same fix
// the probe array needed; see EXPERIMENTS.md).
type waker struct {
	ch chan struct{}
	_  [64 - 8]byte
}

type engine struct {
	eng *proto.Engine
	cfg Config

	slots   *rma.AddrSlots
	ctlRecv []atomic.Int32 // per task
	// dupDropped counts, per receiving processor, the duplicate deliveries
	// (data messages and address packages) discarded by sequence-number
	// dedup. Data duplicates are detected at Put time in the sender's
	// goroutine, hence the atomics.
	dupDropped []atomic.Int64
	probes     []procProbe
	wakers     []waker
	wheel      *timerWheel

	numeric bool
	start   time.Time

	abort atomic.Bool
	// stop is closed when the run aborts or completes: parked processors
	// and the timer wheel unblock on it.
	stop      chan struct{}
	stopOnce  sync.Once
	stallOnce sync.Once
	errMu     sync.Mutex
	runErr    error // first failure wins; guarded-by: errMu
}

// wake posts p's wake token. Non-blocking: if a token is already pending,
// p will re-examine everything anyway.
func (e *engine) wake(p graph.Proc) {
	select {
	case e.wakers[p].ch <- struct{}{}:
	default:
	}
}

// halt unblocks every parked processor and the timer wheel. Idempotent.
func (e *engine) halt() { e.stopOnce.Do(func() { close(e.stop) }) }

func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.errMu.Unlock()
	e.abort.Store(true)
	e.halt()
}

// stalled fires the OnStall hook (once) when a watchdog timeout is about
// to be reported.
func (e *engine) stalled() {
	if e.cfg.OnStall != nil {
		e.stallOnce.Do(e.cfg.OnStall)
	}
}

// dumpAll renders every processor's probe for watchdog escalation,
// including why a parked processor is parked.
func (e *engine) dumpAll() string {
	var sb strings.Builder
	for p := range e.probes {
		pr := &e.probes[p]
		if pr.done.Load() {
			fmt.Fprintf(&sb, "\n  proc %d: finished", p)
			continue
		}
		fmt.Fprintf(&sb, "\n  proc %d: state %s, position %d, %d suspended sends (%d awaiting retransmission)",
			p, proto.State(pr.state.Load()), pr.pos.Load(), pr.susp.Load(), pr.retrans.Load())
		if k := proto.WaitKind(pr.wait.Load()); k != proto.WaitNone {
			verb := "waiting on"
			if pr.parked.Load() {
				verb = "parked on"
			}
			fmt.Fprintf(&sb, ", %s %s", verb, k)
		}
	}
	return sb.String()
}

// clock is the wall clock passed to the protocol core (seconds since the
// run started), which accounts per-state occupancy with it.
func (e *engine) clock() float64 { return time.Since(e.start).Seconds() }

// Run executes the schedule under the MAP plan. The plan must be executable
// (use mem.NewPlan and check Executable first); capacity is taken from it.
func Run(s *sched.Schedule, plan *mem.Plan, cfg Config) (*Result, error) {
	pe, err := proto.NewEngine(s, plan, cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	if cfg.BlockTimeout == 0 {
		cfg.BlockTimeout = 30 * time.Second
	}
	e := &engine{
		eng:        pe,
		cfg:        cfg,
		slots:      rma.NewAddrSlots(s.P),
		ctlRecv:    make([]atomic.Int32, s.G.NumTasks()),
		dupDropped: make([]atomic.Int64, s.P),
		probes:     make([]procProbe, s.P),
		wakers:     make([]waker, s.P),
		stop:       make(chan struct{}),
		numeric:    cfg.Kernel != nil,
		start:      time.Now(),
	}
	for i := range e.wakers {
		e.wakers[i].ch = make(chan struct{}, 1)
	}
	e.wheel = newTimerWheel(e)
	go e.wheel.run()
	defer e.halt()

	res := &Result{
		MAPsExecuted:    make([]int, s.P),
		PeakUnits:       make([]int64, s.P),
		Occupancy:       make([]proto.Occupancy, s.P),
		SuspendedSends:  make([]int, s.P),
		BlockedAdvances: make([]int, s.P),
	}
	permBufs := make([]map[graph.ObjID][]float64, s.P)
	stats := make([]proto.Stats, s.P)

	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.fail(fmt.Errorf("exec: processor %d panicked: %v", p, r))
				}
			}()
			out, err := e.runProc(graph.Proc(p))
			if err != nil {
				e.fail(err)
				return
			}
			res.MAPsExecuted[p] = out.stats.MAPs
			res.PeakUnits[p] = out.peak
			res.Occupancy[p] = out.occ
			res.SuspendedSends[p] = out.stats.DataSuspended
			res.BlockedAdvances[p] = out.stats.BlockedAdvances
			stats[p] = out.stats
			permBufs[p] = out.perm
		}(p)
	}
	wg.Wait()
	// The join above orders every fail() before this read, but take the
	// lock anyway: the invariant is "runErr moves under errMu", not
	// "runErr moves under errMu except where a barrier happens to exist".
	e.errMu.Lock()
	runErr := e.runErr
	e.errMu.Unlock()
	if runErr != nil {
		return nil, runErr
	}
	res.Reliability = make([]proto.Reliability, s.P)
	for p := 0; p < s.P; p++ {
		res.Messages += stats[p].DataSent
		res.AddrPackages += stats[p].AddrConsumed
		res.Reliability[p] = stats[p].Reliability(int(e.dupDropped[p].Load()))
	}
	if e.numeric {
		res.Perm = make(map[graph.ObjID][]float64, s.G.NumObjects())
		for p := 0; p < s.P; p++ {
			for o, b := range permBufs[p] {
				res.Perm[o] = b
			}
		}
	}
	return res, nil
}

// procOut is what one processor's goroutine reports back.
type procOut struct {
	stats proto.Stats
	peak  int64
	occ   proto.Occupancy
	perm  map[graph.ObjID][]float64
}

// runProc drives one processor: a proto.Core over the wall-clock backend.
// The loop has no spin path — a Blocked verdict Polls once and, if nothing
// moved, parks until a wake token (peer deposit, timer wheel, abort) or
// the watchdog deadline.
func (e *engine) runProc(p graph.Proc) (*procOut, error) {
	ps, err := newProcState(e, p)
	if err != nil {
		return nil, err
	}
	core := e.eng.NewCore(p, ps)
	probe := &e.probes[p]
	parkTimer := time.NewTimer(time.Hour)
	defer parkTimer.Stop()
	for {
		now := e.clock()
		st, err := core.Advance(now)
		if err != nil {
			return nil, err
		}
		storeChanged(&probe.state, int32(core.CurrentState()))
		storeChanged(&probe.pos, core.Pos())
		storeChanged(&probe.susp, int32(core.SuspendedLen()))
		storeChanged(&probe.retrans, int32(core.RetransPending()))
		switch st.Kind {
		case proto.RunMAP:
			// Wall-clock MAPs charge no artificial cost: the real work
			// (frees, allocations, package deposits) already happened in
			// the backend. Loop straight into the next Advance.
			storeChanged(&probe.wait, int32(proto.WaitNone))
			ps.touch()
		case proto.RunTask:
			storeChanged(&probe.wait, int32(proto.WaitNone))
			if e.numeric {
				if kerr := e.cfg.Kernel(st.Task, ps.get); kerr != nil {
					return nil, fmt.Errorf("exec: proc %d task %q: %w", p, e.eng.S.G.Tasks[st.Task].Name, kerr)
				}
				// Re-read the clock after the kernel so SND occupancy does
				// not absorb the EXE time.
				now = e.clock()
			}
			core.TaskDone(now)
			// Poll between tasks so peers' address packages are consumed
			// promptly even on processors that never block.
			core.Poll(now)
			ps.touch()
		case proto.Blocked:
			storeChanged(&probe.wait, int32(st.Wait.Kind))
			if err := ps.blockCheck(st.State, core); err != nil {
				return nil, err
			}
			if core.Poll(now) {
				ps.touch()
				continue
			}
			ps.park(probe, parkTimer)
		case proto.Finished:
			probe.done.Store(true)
			return &procOut{stats: core.Stats, peak: ps.peak, occ: core.Occupancy(), perm: ps.perm}, nil
		}
	}
}

// procState is the wall-clock Backend: one processor's rma arena, learned
// remote addresses, and watchdog stamp.
type procState struct {
	e    *engine
	p    graph.Proc
	mem  *rma.Memory
	perm map[graph.ObjID][]float64
	// addr holds remote buffer handles learned through address packages,
	// keyed by (object, destination processor).
	addr map[[2]int32]*rma.Buffer
	// pkg caches the assembled address package per destination while its
	// deposit is being retried (at most one in flight per destination).
	pkg map[graph.Proc]*rma.AddrPackage
	// addrSeen is the highest address-package sequence number consumed from
	// each source processor; packages at or below it are duplicates.
	addrSeen []int32
	// scratch is the reusable consume buffer of ReadAddresses — the RA poll
	// runs in every blocking state and must not allocate in steady state.
	scratch []*rma.AddrPackage
	peak    int64
	// lastProgress stamps the watchdog.
	lastProgress time.Time
}

// newProcState builds the backend and allocates + initializes the
// processor's permanent objects.
func newProcState(e *engine, p graph.Proc) (*procState, error) {
	ps := &procState{
		e:            e,
		p:            p,
		mem:          rma.NewMemory(e.eng.Plan.Capacity),
		perm:         make(map[graph.ObjID][]float64),
		addr:         make(map[[2]int32]*rma.Buffer),
		pkg:          make(map[graph.Proc]*rma.AddrPackage),
		addrSeen:     make([]int32, e.eng.S.P),
		lastProgress: time.Now(),
	}
	g := e.eng.S.G
	for oi := range g.Objects {
		o := &g.Objects[oi]
		if o.Owner != p {
			continue
		}
		b, aerr := ps.mem.Alloc(graph.ObjID(oi), o.Size, e.bufLen(graph.ObjID(oi)))
		if aerr != nil {
			return nil, fmt.Errorf("exec: proc %d permanent allocation: %w", p, aerr)
		}
		if e.numeric {
			if e.cfg.Init != nil {
				e.cfg.Init(graph.ObjID(oi), b.Data)
			}
			ps.perm[graph.ObjID(oi)] = b.Data
		}
	}
	ps.peak = ps.mem.Used()
	return ps, nil
}

func (e *engine) bufLen(o graph.ObjID) int64 {
	if !e.numeric {
		return 0
	}
	if e.cfg.BufLen != nil {
		return e.cfg.BufLen(o)
	}
	return e.eng.S.G.Objects[o].Size
}

func (ps *procState) touch() { ps.lastProgress = time.Now() }

// park sleeps until a wake token arrives, the engine stops, or the
// watchdog deadline passes (the caller's next blockCheck then reports the
// timeout). Correctness of the token protocol: every deposit posts the
// destination's token after its stores, so any state change that happened
// after this processor's last Poll leaves a token and the select returns
// immediately; a token left over from a change already observed costs one
// spurious Advance.
func (ps *procState) park(probe *procProbe, t *time.Timer) {
	remain := ps.e.cfg.BlockTimeout - time.Since(ps.lastProgress)
	t.Reset(remain)
	probe.parked.Store(true)
	select {
	case <-ps.e.wakers[ps.p].ch:
	case <-ps.e.stop:
	case <-t.C:
		probe.parked.Store(false)
		return
	}
	probe.parked.Store(false)
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// blockCheck aborts on engine failure or watchdog expiry. The timeout
// error names the blocked processor, its protocol state and the task or
// object it is waiting on, then dumps every processor's protocol state,
// suspended-send queue depth, retransmit queue depth and park reason, so a
// stall caused by a lost message elsewhere in the machine is diagnosable
// from the report.
func (ps *procState) blockCheck(st proto.State, core *proto.Core) error {
	if ps.e.abort.Load() {
		return fmt.Errorf("exec: proc %d aborted in %s state", ps.p, st)
	}
	if time.Since(ps.lastProgress) > ps.e.cfg.BlockTimeout {
		ps.e.stalled()
		return fmt.Errorf("exec: proc %d made no progress for %v — %s (possible deadlock; see Config.BlockTimeout)\nmachine state at timeout:%s",
			ps.p, ps.e.cfg.BlockTimeout, core.BlockedInfo(), ps.e.dumpAll())
	}
	return nil
}

// get resolves an object to its local buffer for the kernel.
func (ps *procState) get(o graph.ObjID) []float64 {
	if b, ok := ps.mem.Lookup(o); ok {
		return b.Data
	}
	panic(fmt.Sprintf("exec: proc %d kernel touched unallocated object %q", ps.p, ps.e.eng.S.G.Objects[o].Name))
}

// ApplyMAP performs one memory allocation point on the rma arena.
func (ps *procState) ApplyMAP(m *mem.MAP) error {
	g := ps.e.eng.S.G
	for _, o := range m.Frees {
		if err := ps.mem.Free(o, g.Objects[o].Size); err != nil {
			return fmt.Errorf("exec: proc %d MAP free: %w", ps.p, err)
		}
	}
	for _, o := range m.Allocs {
		b, err := ps.mem.Alloc(o, g.Objects[o].Size, ps.e.bufLen(o))
		if err != nil {
			return fmt.Errorf("exec: proc %d MAP alloc (plan said it fits): %w", ps.p, err)
		}
		// Volatile copies of pure input objects (no producer task ever
		// sends them) are filled during preprocessing — the runtime's
		// initial data distribution.
		if ps.e.numeric && ps.e.cfg.Init != nil && ps.e.eng.Tables.Expect[ps.p][o] == 0 {
			ps.e.cfg.Init(o, b.Data)
		}
	}
	if u := ps.mem.Used(); u > ps.peak {
		ps.peak = u
	}
	ps.touch()
	return nil
}

// TryNotify deposits the address package for dst through the single-slot
// mesh; false means dst has not consumed the previous package yet. A
// successful deposit wakes dst: it may be parked waiting for these very
// addresses (its suspended sends) or for the arrivals they unlock.
func (ps *procState) TryNotify(dst graph.Proc, objs []graph.ObjID, seq int32) bool {
	pkg := ps.pkg[dst]
	if pkg == nil || pkg.Seq != seq {
		bufs := make([]*rma.Buffer, len(objs))
		for i, o := range objs {
			b, ok := ps.mem.Lookup(o)
			if !ok {
				panic(fmt.Sprintf("exec: proc %d notifying unallocated object %d", ps.p, o))
			}
			bufs[i] = b
		}
		pkg = &rma.AddrPackage{From: ps.p, Seq: seq, Buffers: bufs}
		ps.pkg[dst] = pkg
	}
	if !ps.e.slots.TrySend(dst, ps.p, pkg) {
		return false
	}
	delete(ps.pkg, dst)
	ps.touch()
	ps.e.wake(dst)
	return true
}

// ReadAddresses is RA: consume pending address packages into the handle
// map. Duplicated deliveries (sequence number at or below the highest
// consumed from that source) are discarded without being counted.
// Consuming a slot frees it, so each package's sender is woken: it may be
// MAP-blocked retrying a deposit into that slot.
func (ps *procState) ReadAddresses() int {
	ps.scratch = ps.e.slots.ConsumeAppend(ps.p, ps.scratch[:0])
	n := 0
	for _, pkg := range ps.scratch {
		ps.e.wake(pkg.From)
		if pkg.Seq <= ps.addrSeen[pkg.From] {
			ps.e.dupDropped[ps.p].Add(1)
			continue
		}
		ps.addrSeen[pkg.From] = pkg.Seq
		for _, b := range pkg.Buffers {
			ps.addr[[2]int32{int32(b.Obj), int32(pkg.From)}] = b
		}
		n++
	}
	if n > 0 {
		ps.touch()
	}
	return n
}

func (ps *procState) AddrKnown(snd proto.Send) bool {
	_, ok := ps.addr[[2]int32{int32(snd.Obj), int32(snd.Dst)}]
	return ok
}

// SendData deposits one data message into the remote buffer (RMA Put) and
// wakes the receiver, which may be parked on the object's arrival
// threshold. A deposit the receiver's sequence check rejects was a
// duplicate delivery; it is charged to the receiving processor's dedup
// counter.
func (ps *procState) SendData(snd proto.Send) {
	b := ps.addr[[2]int32{int32(snd.Obj), int32(snd.Dst)}]
	var delivered bool
	if ps.e.numeric {
		src, ok := ps.mem.Lookup(snd.Obj)
		if !ok {
			panic(fmt.Sprintf("exec: proc %d sending unallocated object %d", ps.p, snd.Obj))
		}
		delivered = b.Put(src.Data, snd.Seq)
	} else {
		delivered = b.PutFlagOnly(snd.Seq)
	}
	if !delivered {
		ps.e.dupDropped[snd.Dst].Add(1)
	}
	ps.touch()
	ps.e.wake(snd.Dst)
}

// SendCtl delivers one control signal and wakes the task's processor,
// which may be parked in REC on the signal count.
func (ps *procState) SendCtl(t graph.TaskID) {
	ps.e.ctlRecv[t].Add(1)
	ps.e.wake(ps.e.eng.S.Assign[t])
}

func (ps *procState) CtlCount(t graph.TaskID) int32 { return ps.e.ctlRecv[t].Load() }

func (ps *procState) Arrived(o graph.ObjID) (int32, bool) {
	b, ok := ps.mem.Lookup(o)
	if !ok {
		return 0, false
	}
	return b.Arrivals(), true
}

// WakeAfter is the wall-clock binding of the Backend timer contract: delay
// 0 posts this processor's own wake token (re-examine as soon as it next
// parks — used by fault-delayed deposits, which retry on the next
// attempt); a positive delay registers the deadline on the engine's timer
// wheel, which posts the token when it expires (retransmission RTOs).
func (ps *procState) WakeAfter(delay float64) {
	if delay <= 0 {
		ps.e.wake(ps.p)
		return
	}
	ps.e.wheel.add(ps.e.clock()+delay, ps.p)
}
