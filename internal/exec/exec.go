// Package exec is the concurrent executor: it runs a scheduled task graph
// under the active memory management scheme with one goroutine per
// (virtual) processor, exercising the real five-state protocol of Section
// 3.3:
//
//	REC  wait for the arrival counters of the current task's volatile
//	     objects (and cross-processor control signals),
//	EXE  run the task's kernel,
//	SND  issue the task's data messages; messages whose remote address is
//	     unknown are enqueued on the suspended-send queue,
//	MAP  free dead volatile objects, allocate ahead, send address packages
//	     (blocking while a peer has not consumed the previous package),
//	END  drain the suspended-send queue.
//
// Every blocking state polls RA (read address packages) and CQ (check the
// suspended queue), exactly as the deadlock-freedom proof requires. The
// executor is used both as a correctness harness (results must equal a
// sequential execution; runs under -race; stray Puts into freed buffers
// panic) and as the numeric engine of the examples.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/rma"
	"repro/internal/sched"
)

// KernelFunc executes a task against its object buffers. get returns the
// local buffer of any object the task reads or writes.
type KernelFunc func(t graph.TaskID, get func(graph.ObjID) []float64) error

// InitFunc fills a permanent object's buffer with its initial value.
type InitFunc func(o graph.ObjID, buf []float64)

// Config controls a run.
type Config struct {
	// Kernel runs each task. nil runs the protocol structure-only (no
	// numeric payloads are allocated or copied).
	Kernel KernelFunc
	// Init initializes permanent objects on their owners (numeric mode).
	Init InitFunc
	// BufLen overrides the physical buffer length of an object (defaults to
	// the object's abstract Size). Only consulted in numeric mode.
	BufLen func(o graph.ObjID) int64
	// BlockTimeout aborts the run if a processor makes no progress for this
	// long (a liveness watchdog for tests; 0 means 30s).
	BlockTimeout time.Duration
}

// Result reports a completed run.
type Result struct {
	// MAPsExecuted is the number of MAPs each processor performed.
	MAPsExecuted []int
	// PeakUnits is the per-processor peak memory in use (abstract units).
	PeakUnits []int64
	// Perm maps every object to its final buffer on its owner (numeric
	// mode; nil otherwise).
	Perm map[graph.ObjID][]float64
}

type engine struct {
	s      *sched.Schedule
	plan   *mem.Plan
	tables *proto.Tables
	cfg    Config

	slots   *rma.AddrSlots
	ctlRecv []atomic.Int32 // per task

	// volatile buffer registries: vola[p] is written only by p's goroutine
	// before any reader polls it via arrivals — producers reach buffers
	// only through address packages, never through this map.
	numeric bool

	abort  atomic.Bool
	errMu  sync.Mutex
	runErr error
}

func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.errMu.Unlock()
	e.abort.Store(true)
}

// Run executes the schedule under the MAP plan. The plan must be executable
// (use mem.NewPlan and check Executable first); capacity is taken from it.
func Run(s *sched.Schedule, plan *mem.Plan, cfg Config) (*Result, error) {
	if !plan.Executable {
		return nil, fmt.Errorf("exec: plan is not executable under capacity %d", plan.Capacity)
	}
	if cfg.BlockTimeout == 0 {
		cfg.BlockTimeout = 30 * time.Second
	}
	e := &engine{
		s:       s,
		plan:    plan,
		tables:  proto.Derive(s),
		cfg:     cfg,
		slots:   rma.NewAddrSlots(s.P),
		ctlRecv: make([]atomic.Int32, s.G.NumTasks()),
		numeric: cfg.Kernel != nil,
	}
	res := &Result{
		MAPsExecuted: make([]int, s.P),
		PeakUnits:    make([]int64, s.P),
	}
	permBufs := make([]map[graph.ObjID][]float64, s.P)

	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.fail(fmt.Errorf("exec: processor %d panicked: %v", p, r))
				}
			}()
			maps, peak, bufs, err := e.runProc(graph.Proc(p))
			if err != nil {
				e.fail(err)
				return
			}
			res.MAPsExecuted[p] = maps
			res.PeakUnits[p] = peak
			permBufs[p] = bufs
		}(p)
	}
	wg.Wait()
	if e.runErr != nil {
		return nil, e.runErr
	}
	if e.numeric {
		res.Perm = make(map[graph.ObjID][]float64, s.G.NumObjects())
		for p := 0; p < s.P; p++ {
			for o, b := range permBufs[p] {
				res.Perm[o] = b
			}
		}
	}
	return res, nil
}

// procState is the per-processor runtime state.
type procState struct {
	e    *engine
	p    graph.Proc
	mem  *rma.Memory
	perm map[graph.ObjID][]float64
	// addr holds remote buffer handles learned through address packages,
	// keyed by (object, destination processor).
	addr map[[2]int32]*rma.Buffer
	// suspended send queue (FIFO).
	suspended []proto.Send
	// progress stamps for the watchdog.
	lastProgress time.Time
}

func (e *engine) bufLen(o graph.ObjID) int64 {
	if !e.numeric {
		return 0
	}
	if e.cfg.BufLen != nil {
		return e.cfg.BufLen(o)
	}
	return e.s.G.Objects[o].Size
}

func (e *engine) runProc(p graph.Proc) (mapsExecuted int, peak int64, permOut map[graph.ObjID][]float64, err error) {
	ps := &procState{
		e:    e,
		p:    p,
		mem:  rma.NewMemory(e.plan.Capacity),
		perm: make(map[graph.ObjID][]float64),
		addr: make(map[[2]int32]*rma.Buffer),

		lastProgress: time.Now(),
	}
	s := e.s

	// Allocate and initialize permanent objects.
	for oi := range s.G.Objects {
		o := &s.G.Objects[oi]
		if o.Owner != p {
			continue
		}
		b, aerr := ps.mem.Alloc(graph.ObjID(oi), o.Size, e.bufLen(graph.ObjID(oi)))
		if aerr != nil {
			return 0, 0, nil, fmt.Errorf("exec: proc %d permanent allocation: %w", p, aerr)
		}
		if e.numeric {
			if e.cfg.Init != nil {
				e.cfg.Init(graph.ObjID(oi), b.Data)
			}
			ps.perm[graph.ObjID(oi)] = b.Data
		}
	}
	peak = ps.mem.Used()

	order := s.Order[p]
	maps := e.plan.Procs[p].MAPs
	mapIdx := 0
	pos := int32(0)
	for {
		// MAP state.
		if mapIdx < len(maps) && maps[mapIdx].Pos == pos {
			if err := ps.doMAP(&maps[mapIdx]); err != nil {
				return 0, 0, nil, err
			}
			mapsExecuted++
			mapIdx++
			if u := ps.mem.Used(); u > peak {
				peak = u
			}
		}
		if int(pos) >= len(order) {
			break
		}
		t := order[pos]
		// REC state.
		if err := ps.waitReady(t); err != nil {
			return 0, 0, nil, err
		}
		// EXE state.
		if e.numeric {
			if kerr := e.cfg.Kernel(t, ps.get); kerr != nil {
				return 0, 0, nil, fmt.Errorf("exec: proc %d task %q: %w", p, s.G.Tasks[t].Name, kerr)
			}
		}
		// SND state.
		for _, snd := range e.tables.Sends[t] {
			if !ps.trySend(snd) {
				ps.suspended = append(ps.suspended, snd)
			}
		}
		for _, v := range e.tables.CtlSends[t] {
			e.ctlRecv[v].Add(1)
		}
		ps.poll()
		ps.lastProgress = time.Now()
		pos++
	}
	// END state: drain the suspended queue.
	for len(ps.suspended) > 0 {
		if err := ps.blockCheck("END"); err != nil {
			return 0, 0, nil, err
		}
		ps.poll()
	}
	return mapsExecuted, peak, ps.perm, nil
}

// get resolves an object to its local buffer for the kernel.
func (ps *procState) get(o graph.ObjID) []float64 {
	if b, ok := ps.mem.Lookup(o); ok {
		return b.Data
	}
	panic(fmt.Sprintf("exec: proc %d kernel touched unallocated object %q", ps.p, ps.e.s.G.Objects[o].Name))
}

// doMAP performs one memory allocation point.
func (ps *procState) doMAP(m *mem.MAP) error {
	g := ps.e.s.G
	for _, o := range m.Frees {
		if err := ps.mem.Free(o, g.Objects[o].Size); err != nil {
			return fmt.Errorf("exec: proc %d MAP free: %w", ps.p, err)
		}
	}
	newBufs := make(map[graph.ObjID]*rma.Buffer, len(m.Allocs))
	for _, o := range m.Allocs {
		b, err := ps.mem.Alloc(o, g.Objects[o].Size, ps.e.bufLen(o))
		if err != nil {
			return fmt.Errorf("exec: proc %d MAP alloc (plan said it fits): %w", ps.p, err)
		}
		// Volatile copies of pure input objects (no producer task ever
		// sends them) are filled during preprocessing — the runtime's
		// initial data distribution.
		if ps.e.numeric && ps.e.cfg.Init != nil && ps.e.tables.Expect[ps.p][o] == 0 {
			ps.e.cfg.Init(o, b.Data)
		}
		newBufs[o] = b
	}
	// Assemble and send address packages; block (polling RA/CQ) while a
	// destination has not consumed our previous package.
	for dst, objs := range m.Notify {
		bufs := make([]*rma.Buffer, len(objs))
		for i, o := range objs {
			bufs[i] = newBufs[o]
		}
		pkg := &rma.AddrPackage{From: ps.p, Buffers: bufs}
		for !ps.e.slots.TrySend(dst, ps.p, pkg) {
			if err := ps.blockCheck("MAP"); err != nil {
				return err
			}
			ps.poll()
		}
	}
	ps.lastProgress = time.Now()
	return nil
}

// waitReady implements the REC state for task t.
func (ps *procState) waitReady(t graph.TaskID) error {
	e := ps.e
	for {
		ready := e.ctlRecv[t].Load() >= e.tables.CtlNeed[t]
		if ready {
			for _, need := range e.tables.Needs[t] {
				b, ok := ps.mem.Lookup(need.Obj)
				if !ok {
					return fmt.Errorf("exec: proc %d task %q needs unallocated object %q", ps.p, e.s.G.Tasks[t].Name, e.s.G.Objects[need.Obj].Name)
				}
				if b.Arrivals() < need.MinArrivals {
					ready = false
					break
				}
			}
		}
		if ready {
			ps.lastProgress = time.Now()
			return nil
		}
		if err := ps.blockCheck("REC"); err != nil {
			return err
		}
		ps.poll()
	}
}

// trySend dispatches one data message if the remote address is known.
func (ps *procState) trySend(snd proto.Send) bool {
	b, ok := ps.addr[[2]int32{int32(snd.Obj), int32(snd.Dst)}]
	if !ok {
		return false
	}
	if ps.e.numeric {
		src, ok := ps.mem.Lookup(snd.Obj)
		if !ok {
			panic(fmt.Sprintf("exec: proc %d sending unallocated object %d", ps.p, snd.Obj))
		}
		b.Put(src.Data)
	} else {
		b.PutFlagOnly()
	}
	return true
}

// poll is RA followed by CQ, as the protocol requires in every blocking
// state (and between tasks).
func (ps *procState) poll() {
	// RA: read address packages.
	for _, pkg := range ps.e.slots.Consume(ps.p) {
		for _, b := range pkg.Buffers {
			ps.addr[[2]int32{int32(b.Obj), int32(pkg.From)}] = b
		}
		ps.lastProgress = time.Now()
	}
	// CQ: dispatch suspended messages whose addresses are now known,
	// preserving FIFO order per (object, destination).
	if len(ps.suspended) > 0 {
		blocked := make(map[[2]int32]bool)
		kept := ps.suspended[:0]
		for _, snd := range ps.suspended {
			k := [2]int32{int32(snd.Obj), int32(snd.Dst)}
			if blocked[k] || !ps.trySend(snd) {
				blocked[k] = true
				kept = append(kept, snd)
				continue
			}
			ps.lastProgress = time.Now()
		}
		ps.suspended = kept
	}
	runtime.Gosched()
}

// blockCheck aborts on engine failure or watchdog expiry.
func (ps *procState) blockCheck(state string) error {
	if ps.e.abort.Load() {
		return fmt.Errorf("exec: proc %d aborted in %s state", ps.p, state)
	}
	if time.Since(ps.lastProgress) > ps.e.cfg.BlockTimeout {
		return fmt.Errorf("exec: proc %d made no progress for %v in %s state (possible deadlock)", ps.p, ps.e.cfg.BlockTimeout, state)
	}
	return nil
}
