package exec

import (
	"sync"
	"time"

	"repro/internal/graph"
)

// timerWheel is the executor's single timer goroutine: WakeAfter
// registrations from every processor (retransmission RTOs, fault-delay
// deadlines) land in one min-heap ordered by due time in clock seconds,
// and the wheel sleeps until the earliest deadline, then posts the due
// processors' wake tokens. Before the event-driven rework these deadlines
// were rediscovered by every processor's busy-poll loop; one goroutine
// replacing p pollers is what "retransmit RTOs move onto a timer wheel"
// means. Duplicate registrations of the same deadline are harmless — each
// fires at most one spurious wake — so callers re-arming a still-pending
// timer (Poll does, on every pass over a waiting retransmission) need no
// dedup handshake.
type timerWheel struct {
	e    *engine
	mu   sync.Mutex
	h    wheelHeap
	kick chan struct{} // posted when a new earliest deadline needs re-arming
}

func newTimerWheel(e *engine) *timerWheel {
	return &timerWheel{e: e, kick: make(chan struct{}, 1)}
}

// add registers a wake for p at the absolute clock time due. If due
// precedes everything pending, the wheel goroutine is kicked to re-arm.
func (w *timerWheel) add(due float64, p graph.Proc) {
	w.mu.Lock()
	w.h.push(wheelEntry{due: due, p: p})
	first := w.h[0].due == due && w.h[0].p == p
	w.mu.Unlock()
	if first {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// run is the wheel goroutine: fire everything due, sleep until the next
// deadline (or until kicked with an earlier one), exit when the engine
// stops.
func (w *timerWheel) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		w.mu.Lock()
		now := w.e.clock()
		for len(w.h) > 0 && w.h[0].due <= now {
			p := w.h.pop().p
			w.mu.Unlock()
			w.e.wake(p)
			w.mu.Lock()
			now = w.e.clock()
		}
		wait := time.Duration(-1)
		if len(w.h) > 0 {
			wait = time.Duration((w.h[0].due - now) * float64(time.Second))
			if wait <= 0 {
				wait = time.Nanosecond
			}
		}
		w.mu.Unlock()
		if wait < 0 {
			// Nothing pending: sleep until a registration or shutdown.
			select {
			case <-w.kick:
			case <-w.e.stop:
				return
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-w.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-w.e.stop:
			return
		}
	}
}

// wheelEntry is one registered deadline.
type wheelEntry struct {
	due float64
	p   graph.Proc
}

// wheelHeap is a hand-rolled min-heap on due time. container/heap would
// box every Push through its interface; the wheel sits on the
// retransmission hot path of faulted runs, so pushes must not allocate.
type wheelHeap []wheelEntry

func (h *wheelHeap) push(e wheelEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent].due <= s[i].due {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *wheelHeap) pop() wheelEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].due < s[min].due {
			min = l
		}
		if r < len(s) && s[r].due < s[min].due {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
