package exec

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
)

// TestCholeskyUnderFaultInjection checks the liveness claim end to end
// with real data: with a third of all address packages and data messages
// delayed — and then with every single message forced through the
// suspended-send queue — the numeric factorization must complete and equal
// the sequential one bit for bit.
func TestCholeskyUnderFaultInjection(t *testing.T) {
	pr := cholProblem(t, 3, 5, 13)
	s := scheduleFor(t, pr.G, 3, sched.MPO)
	plan, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Executable {
		t.Fatalf("plan not executable at MinMem %d", s.MinMem())
	}
	want, err := pr.SequentialFactor()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []proto.Faults{
		{Seed: 5, AddrFrac: 0.3, DataFrac: 0.3},
		{Seed: 9, AddrFrac: 1, DataFrac: 1},
		{Seed: 11, DropFrac: 0.25, DupFrac: 0.10},
		{Seed: 13, AddrFrac: 0.3, DataFrac: 0.3, DropFrac: 0.25, DupFrac: 0.25},
	} {
		res, err := Run(s, plan, Config{
			Kernel:       pr.Kernel,
			Init:         pr.InitObject,
			BlockTimeout: 20 * time.Second,
			Faults:       f,
		})
		if err != nil {
			t.Fatalf("faults %+v: %v", f, err)
		}
		if f.DataFrac >= 1 {
			// Every data message suspends exactly once: the per-proc totals
			// are protocol-determined.
			for q, susp := range res.SuspendedSends {
				if susp == 0 && res.Messages > 0 && len(s.Order[q]) > 0 {
					// A processor that sends nothing legitimately has zero.
					continue
				}
				if susp < 0 {
					t.Fatalf("proc %d negative suspensions", q)
				}
			}
			total := 0
			for _, susp := range res.SuspendedSends {
				total += susp
			}
			if total != res.Messages {
				t.Fatalf("forced suspension: %d suspended != %d messages", total, res.Messages)
			}
		}
		rel := proto.SumReliability(res.Reliability)
		if f.DropFrac > 0 && rel.Retransmits == 0 {
			t.Errorf("faults %+v: loss injected but no retransmissions recorded", f)
		}
		if f.DropFrac == 0 && (rel.Retransmits != 0 || rel.Dropped != 0) {
			t.Errorf("faults %+v: no loss configured but reliability reports %+v", f, rel)
		}
		if rel.Retransmits != rel.Dropped {
			t.Errorf("faults %+v: %d retransmits for %d drops", f, rel.Retransmits, rel.Dropped)
		}
		for oi := range pr.G.Objects {
			o := graph.ObjID(oi)
			for i := range want[o] {
				if math.Abs(res.Perm[o][i]-want[o][i]) > 1e-9 {
					t.Fatalf("faults %+v: object %q differs at %d", f, pr.G.Objects[oi].Name, i)
				}
			}
		}
	}
}

// TestWatchdogReportsBlockedDetail forces a deterministic stall — the only
// producer of a cross-processor object holds its kernel until the watchdog
// observes the stall (the OnStall hook, so the test waits on the event
// instead of sleeping a fixed multiple of the timeout) — and checks the
// watchdog error identifies the blocked processor, its protocol state, and
// the task/object it is waiting on, then dumps every processor's protocol
// state, suspended-send queue depth, retransmit queue depth and wait
// reason (watchdog escalation, so loss-induced stalls are diagnosable
// machine-wide).
func TestWatchdogReportsBlockedDetail(t *testing.T) {
	b := graph.NewBuilder()
	a := b.Object("a", 4)
	bb := b.Object("b", 4)
	t0 := b.Task("t0", 1, nil, []graph.ObjID{a})
	b.Task("t1", 1, []graph.ObjID{a}, []graph.ObjID{bb})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched.CyclicOwners(g, 2) // a on proc 0, b on proc 1
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mem.NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	_, err = Run(s, plan, Config{
		Kernel: func(tk graph.TaskID, get func(graph.ObjID) []float64) error {
			if tk == t0 {
				<-release // held exactly until the watchdog fires
			}
			return nil
		},
		Init:         func(graph.ObjID, []float64) {},
		BlockTimeout: 250 * time.Millisecond,
		OnStall:      func() { close(release) },
	})
	if err == nil {
		t.Fatal("expected a watchdog timeout, got success")
	}
	msg := err.Error()
	for _, want := range []string{
		"no progress", "state", "t1",
		// Escalation: the dump must cover BOTH processors, not just the
		// blocked one, and report queue depths plus the reporter's own
		// wait reason (proc 1 is REC-blocked on a's arrival).
		"machine state at timeout:",
		"proc 0: state",
		"proc 1: state",
		"suspended sends",
		"awaiting retransmission",
		"waiting on arrival",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("watchdog error missing %q: %v", want, err)
		}
	}
}
