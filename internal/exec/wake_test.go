package exec

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// TestParkedProcessorsDoNotSpin is the executor's idle-CPU assertion: a
// blocked processor must park, not poll, so the number of Advance calls
// that return Blocked stays within a small multiple of the machine's event
// count (every blocked Advance is preceded by a wake — a deposit, a timer,
// or at worst a stale token). A busy-polling executor re-advances blocked
// processors continuously and exceeds this bound by orders of magnitude on
// an oversubscribed box.
func TestParkedProcessorsDoNotSpin(t *testing.T) {
	const p = 16
	pr := cholProblem(t, p, 8, 21)
	s := scheduleFor(t, pr.G, p, sched.MPO)
	plan, err := mem.NewPlan(s, s.TOT())
	if err != nil || !plan.Executable {
		t.Fatal("plan not executable")
	}
	res, err := Run(s, plan, Config{}) // structure-only: pure protocol
	if err != nil {
		t.Fatal(err)
	}
	tasks := 0
	for q := range s.Order {
		tasks += len(s.Order[q])
	}
	maps := 0
	for _, m := range res.MAPsExecuted {
		maps += m
	}
	// Every wake-worthy event, generously: one per message, address
	// package, control-signal-bearing task and MAP, with slack for timer
	// and stale-token wakes plus a per-processor constant.
	events := res.Messages + res.AddrPackages + tasks + maps
	bound := 10*events + 100*p
	blocked := 0
	for _, n := range res.BlockedAdvances {
		blocked += n
	}
	if blocked > bound {
		t.Fatalf("executor is spinning: %d blocked Advances for ~%d events (bound %d)", blocked, events, bound)
	}
	if blocked == 0 && res.Messages > 0 {
		t.Fatalf("no blocked Advances at p=%d — the spin counter is not wired", p)
	}
}

// TestDepositVsParkRace hammers the transition the wake protocol must get
// right: a processor deciding to park while peers deposit into it
// concurrently. Small cross-processor DAGs make every task's inputs remote
// — each receive is a potential park racing the matching deposit — and the
// trial count makes the interleavings diverse. A lost wakeup shows up as a
// watchdog timeout; run with -race to also check the memory ordering of
// the deposit-then-token protocol.
func TestDepositVsParkRace(t *testing.T) {
	rng := util.NewRNG(31)
	for trial := 0; trial < 30; trial++ {
		p := 2 + rng.Intn(3)
		g := randomOwnerComputeDAG(rng, 30, 8, p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleMPO(g, assign, p, sched.Unit())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := mem.NewPlan(s, s.TOT())
		if err != nil || !plan.Executable {
			t.Fatal("plan not executable")
		}
		if _, err := Run(s, plan, Config{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
