package exec

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// TestKernelFailureAbortsCleanly injects kernel errors at random tasks and
// asserts the whole machine shuts down with the error instead of leaving
// peer processors spinning forever in REC/END states.
func TestKernelFailureAbortsCleanly(t *testing.T) {
	rng := util.NewRNG(404)
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 40, 10, p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleMPO(g, assign, p, sched.Unit())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := mem.NewPlan(s, s.TOT())
		if err != nil {
			t.Fatal(err)
		}
		victim := graph.TaskID(rng.Intn(g.NumTasks()))
		boom := errors.New("injected fault")
		start := time.Now()
		_, err = Run(s, plan, Config{
			Kernel: func(tk graph.TaskID, get func(graph.ObjID) []float64) error {
				if tk == victim {
					return boom
				}
				return nil
			},
			Init:         func(graph.ObjID, []float64) {},
			BlockTimeout: 5 * time.Second,
		})
		if err == nil {
			t.Fatalf("trial %d: injected fault not reported", trial)
		}
		// The run may surface either the injected fault (victim proc) or an
		// abort notice (peers), but it must terminate well before the
		// watchdog window on every processor.
		if !strings.Contains(err.Error(), "injected fault") && !strings.Contains(err.Error(), "aborted") {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		if time.Since(start) > 4*time.Second {
			t.Fatalf("trial %d: shutdown took %v", trial, time.Since(start))
		}
	}
}

// TestKernelPanicRecovered ensures a panicking kernel is converted into an
// error rather than crashing the test process.
func TestKernelPanicRecovered(t *testing.T) {
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mem.NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(s, plan, Config{
		Kernel: func(tk graph.TaskID, get func(graph.ObjID) []float64) error {
			if tk == 5 {
				panic("kernel exploded")
			}
			return nil
		},
		Init:         func(graph.ObjID, []float64) {},
		BlockTimeout: 5 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

// TestWatchdogFiresOnArtificialStall wedges one processor inside a kernel
// until the watchdog observes the stall (OnStall hook) and verifies its
// peers abort with the watchdog rather than hanging. The time.After
// fallback covers the run-completes path: if no peer ever needed the
// wedged task's output early, no watchdog fires and the kernel returns on
// its own.
func TestWatchdogFiresOnArtificialStall(t *testing.T) {
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleRCP(g, assign, 2, sched.Unit())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mem.NewPlan(s, s.TOT())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	_, err = Run(s, plan, Config{
		Kernel: func(tk graph.TaskID, get func(graph.ObjID) []float64) error {
			if tk == 0 {
				select {
				case <-release:
				case <-time.After(2 * time.Second):
				}
			}
			return nil
		},
		Init:         func(graph.ObjID, []float64) {},
		BlockTimeout: 300 * time.Millisecond,
		OnStall:      func() { close(release) },
	})
	// Either a peer times out waiting for task 0's output, or (if the
	// sleeping task's output was not needed early) the run completes.
	if err != nil && !strings.Contains(err.Error(), "no progress") && !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected error: %v", err)
	}
	_ = fmt.Sprint(err)
}
