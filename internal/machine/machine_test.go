package machine

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/util"
)

func figure2Schedule(t *testing.T, h sched.Heuristic) *sched.Schedule {
	t.Helper()
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleWith(h, g, assign, 2, sched.Unit(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPlan(t *testing.T, s *sched.Schedule, cap int64) *mem.Plan {
	t.Helper()
	pl, err := mem.NewPlan(s, cap)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Executable {
		t.Fatalf("capacity %d not executable (MinMem %d)", cap, s.MinMem())
	}
	return pl
}

func TestBaselineCompletesAllTasks(t *testing.T) {
	s := figure2Schedule(t, sched.RCP)
	pl := mustPlan(t, s, s.TOT())
	rec := &trace.Recorder{}
	res, err := Simulate(s, pl, sched.Unit(), Options{Baseline: true, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelTime <= 0 {
		t.Fatalf("parallel time %v", res.ParallelTime)
	}
	nTasks := 0
	for _, sp := range rec.Spans {
		if sp.Kind == trace.Task {
			nTasks++
		}
	}
	if nTasks != s.G.NumTasks() {
		t.Fatalf("executed %d of %d tasks", nTasks, s.G.NumTasks())
	}
	// Message count: all deduplicated send points must be delivered.
	tables := proto.Derive(s)
	wantMsgs := 0
	for ti := range tables.Sends {
		wantMsgs += len(tables.Sends[ti])
	}
	if res.Messages != wantMsgs {
		t.Fatalf("delivered %d messages, want %d", res.Messages, wantMsgs)
	}
}

func TestManagedSlowerThanBaseline(t *testing.T) {
	s := figure2Schedule(t, sched.MPO)
	model := sched.T3D()
	base, err := Simulate(s, mustPlan(t, s, s.TOT()), model, Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(s, mustPlan(t, s, s.TOT()), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Simulate(s, mustPlan(t, s, s.MinMem()), model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.ParallelTime < base.ParallelTime {
		t.Fatalf("managed (full mem) faster than baseline: %v < %v", full.ParallelTime, base.ParallelTime)
	}
	if tight.AvgMAPs <= full.AvgMAPs {
		t.Fatalf("tight memory should add MAPs: %v vs %v", tight.AvgMAPs, full.AvgMAPs)
	}
	if tight.AddrPackages == 0 {
		t.Fatalf("no address packages delivered under management")
	}
}

func TestUnitModelMakespanMatchesListPrediction(t *testing.T) {
	// With the unit model and the baseline executor, the simulated parallel
	// time should be close to the list scheduler's prediction (same cost
	// assumptions; the simulator adds no overhead in baseline mode).
	s := figure2Schedule(t, sched.RCP)
	res, err := Simulate(s, mustPlan(t, s, s.TOT()), sched.Unit(), Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelTime > 2*s.Makespan {
		t.Fatalf("simulated %v much worse than predicted %v", res.ParallelTime, s.Makespan)
	}
}

func TestDeadlockFreedomRandomStress(t *testing.T) {
	rng := util.NewRNG(5150)
	for trial := 0; trial < 60; trial++ {
		p := 2 + rng.Intn(6)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(80), 8+rng.Intn(16), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		for _, cap := range []int64{s.TOT(), s.MinMem()} {
			pl, err := mem.NewPlan(s, cap)
			if err != nil {
				t.Fatal(err)
			}
			if !pl.Executable {
				continue
			}
			res, err := Simulate(s, pl, sched.T3D(), Options{})
			if err != nil {
				t.Fatalf("trial %d (p=%d %v cap=%d): %v", trial, p, h, cap, err)
			}
			want := float64(pl.TotalMAPs()) / float64(p)
			if res.AvgMAPs != want {
				t.Fatalf("trial %d: AvgMAPs %v != plan %v", trial, res.AvgMAPs, want)
			}
		}
	}
}

func TestTraceGantt(t *testing.T) {
	s := figure2Schedule(t, sched.DTS)
	rec := &trace.Recorder{}
	if _, err := Simulate(s, mustPlan(t, s, s.MinMem()), sched.Unit(), Options{Trace: rec}); err != nil {
		t.Fatal(err)
	}
	gantt := rec.Gantt(60)
	if !strings.Contains(gantt, "P0") || !strings.Contains(gantt, "P1") {
		t.Fatalf("Gantt missing processor rows:\n%s", gantt)
	}
	if rec.Makespan() <= 0 {
		t.Fatalf("empty trace")
	}
}

func randomOwnerComputeDAG(rng *util.RNG, nTasks, nObjs, p int) *graph.DAG {
	b := graph.NewBuilder()
	objs := make([]graph.ObjID, nObjs)
	for i := 0; i < nObjs; i++ {
		objs[i] = b.Object(string(rune('A'+i%26))+string(rune('0'+i/26)), int64(1+rng.Intn(4)))
	}
	written := []graph.ObjID{}
	for t := 0; t < nTasks; t++ {
		var reads []graph.ObjID
		for r := 0; r < rng.Intn(3); r++ {
			if len(written) > 0 {
				reads = append(reads, written[rng.Intn(len(written))])
			}
		}
		wobj := objs[rng.Intn(nObjs)]
		b.Task(string(rune('a'+t%26))+string(rune('0'+t/26)), float64(1+rng.Intn(5)), reads, []graph.ObjID{wobj})
		written = append(written, wobj)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	sched.CyclicOwners(g, p)
	return g
}
