// Package machine is the discrete-event simulator of a distributed-memory
// message-passing machine with remote memory access, standing in for the
// paper's Cray-T3D (see DESIGN.md §2). It executes the same five-state
// protocol as the concurrent executor — literally the same code: both
// backends drive internal/proto's Core, which owns every REC/EXE/SND/MAP/
// END transition, the address-package handshake and the suspended-send
// queue. This package supplies only the virtual-clock mechanics: an event
// queue ordered by (time, sequence), simulated arrival counters and slot
// FIFOs, and the published T3D cost constants (103 MFLOPS per node, 2.7 µs
// message overhead, 128 MB/s bandwidth), so the paper's timing tables can
// be regenerated deterministically.
package machine

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configure a simulation.
type Options struct {
	// Baseline simulates the original RAPID executor: the whole volatile
	// space is allocated up front, all addresses are exchanged during
	// preprocessing and memory management costs nothing. Use with a
	// full-capacity plan to obtain the "100% memory, no managing overhead"
	// comparison base of Tables 2 and 3.
	Baseline bool
	// SlotDepth is the number of in-flight address packages each
	// (sender, receiver) pair may have (default 1 — the paper's
	// "no address buffering" decision; larger values are an ablation).
	SlotDepth int
	// Trace, if non-nil, records task and MAP spans.
	Trace *trace.Recorder
	// Faults injects deterministic protocol perturbations (delayed address
	// packages and data messages); see proto.Faults. Because decisions are
	// pure functions of message identity, the simulator delays exactly the
	// messages the concurrent executor would delay for the same Seed.
	Faults proto.Faults
}

// Result reports a completed simulation.
type Result struct {
	// ParallelTime is the completion time of the last task (seconds).
	ParallelTime float64
	// AvgMAPs is the average number of MAPs executed per processor.
	AvgMAPs float64
	// Messages is the number of data messages delivered.
	Messages int
	// AddrPackages is the number of address packages delivered.
	AddrPackages int
	// MAPsPerProc is the number of MAPs each processor executed.
	MAPsPerProc []int
	// PeakUnits is the per-processor peak memory in use (abstract units,
	// permanent + volatile), as accounted by the simulated allocator.
	PeakUnits []int64
	// SuspendedSends counts, per processor, the data messages that went
	// through the suspended-send queue.
	SuspendedSends []int
	// Occupancy is the virtual time each processor spent in each protocol
	// state (indexed by proto.State).
	Occupancy []proto.Occupancy
	// Reliability is the per-processor ack/retransmit summary (sender-side
	// counters plus the duplicate deliveries that processor discarded).
	Reliability []proto.Reliability
}

// event kinds
const (
	evWake int8 = iota // re-examine processor state
	evTaskDone
	evMAPDone
	evMsg // data message arrival: increments arrivals[dst][obj]
	evCtl // control signal arrival: increments ctl[task]
)

type event struct {
	t    float64
	seq  int64 // tie-break for determinism
	kind int8
	proc graph.Proc  // evWake/evTaskDone/evMAPDone/evMsg
	obj  graph.ObjID // evMsg
	mseq int32       // evMsg: the message's version sequence number
	task graph.TaskID
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// slotFIFO is the queue of in-flight address packages for one
// (receiver, sender) pair: arrival time, package contents and the
// package's per-(sender, receiver) sequence number for receiver dedup.
type slotFIFO struct {
	times []float64
	pkgs  [][]graph.ObjID
	seqs  []int32
}

// driver is one simulated processor: the shared protocol core plus its
// virtual-clock backend.
type driver struct {
	core *proto.Core
	be   *simBackend
	busy bool // charging a task or MAP cost; does not poll (protocol rule)
	done bool
}

type sim struct {
	s     *sched.Schedule
	model sched.CostModel
	opt   Options
	eng   *proto.Engine

	q   eventQueue
	seq int64
	now float64
	err error

	drv       []driver
	ctl       []int32 // per task
	slotDepth int

	lastTaskFinish float64
}

func (m *sim) push(t float64, kind int8, p graph.Proc, o graph.ObjID, task graph.TaskID) {
	m.seq++
	heap.Push(&m.q, event{t: t, seq: m.seq, kind: kind, proc: p, obj: o, task: task})
}

// pushMsg enqueues a data-message arrival carrying its sequence number.
func (m *sim) pushMsg(t float64, dst graph.Proc, o graph.ObjID, mseq int32) {
	m.seq++
	heap.Push(&m.q, event{t: t, seq: m.seq, kind: evMsg, proc: dst, obj: o, mseq: mseq})
}

func (m *sim) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Simulate runs the schedule under the plan and cost model.
func Simulate(s *sched.Schedule, plan *mem.Plan, model sched.CostModel, opt Options) (*Result, error) {
	eng, err := proto.NewEngine(s, plan, opt.Faults)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	depth := opt.SlotDepth
	if depth < 1 {
		depth = 1
	}
	m := &sim{
		s: s, model: model, opt: opt, eng: eng,
		drv:       make([]driver, s.P),
		ctl:       make([]int32, s.G.NumTasks()),
		slotDepth: depth,
	}
	for p := 0; p < s.P; p++ {
		be := newSimBackend(m, graph.Proc(p))
		m.drv[p] = driver{core: eng.NewCore(graph.Proc(p), be), be: be}
		m.push(0, evWake, graph.Proc(p), 0, 0)
	}

	for m.q.Len() > 0 && m.err == nil {
		ev := heap.Pop(&m.q).(event)
		m.now = ev.t
		switch ev.kind {
		case evMsg:
			m.drv[ev.proc].be.arrive(ev.obj, ev.mseq)
			m.step(ev.proc, ev.t)
		case evCtl:
			m.ctl[ev.task]++
			m.step(m.s.Assign[ev.task], ev.t)
		case evTaskDone:
			d := &m.drv[ev.proc]
			d.busy = false
			if ev.t > m.lastTaskFinish {
				m.lastTaskFinish = ev.t
			}
			d.core.TaskDone(ev.t)
			m.step(ev.proc, ev.t)
		case evMAPDone:
			m.drv[ev.proc].busy = false
			m.step(ev.proc, ev.t)
		case evWake:
			m.step(ev.proc, ev.t)
		}
	}
	if m.err != nil {
		return nil, m.err
	}
	for p := range m.drv {
		if !m.drv[p].done {
			core := m.drv[p].core
			return nil, fmt.Errorf("machine: deadlock: processor %d stuck at position %d — %s",
				p, core.Pos(), core.BlockedInfo())
		}
	}
	res := &Result{
		ParallelTime:   m.lastTaskFinish,
		MAPsPerProc:    make([]int, s.P),
		PeakUnits:      make([]int64, s.P),
		SuspendedSends: make([]int, s.P),
		Occupancy:      make([]proto.Occupancy, s.P),
		Reliability:    make([]proto.Reliability, s.P),
	}
	totalMAPs := 0
	for p := range m.drv {
		st := m.drv[p].core.Stats
		totalMAPs += st.MAPs
		res.MAPsPerProc[p] = st.MAPs
		res.SuspendedSends[p] = st.DataSuspended
		res.Messages += st.DataSent
		res.AddrPackages += st.AddrConsumed
		res.PeakUnits[p] = m.drv[p].be.peak
		res.Occupancy[p] = m.drv[p].core.Occupancy()
		res.Reliability[p] = st.Reliability(m.drv[p].be.dupDropped)
	}
	res.AvgMAPs = float64(totalMAPs) / float64(s.P)
	return res, nil
}

// step advances processor p as far as it can at time now by driving its
// protocol core: Poll (RA/CQ), then Advance until the core blocks, finishes
// or hands back costed work (a task or a MAP) to charge on the clock.
func (m *sim) step(p graph.Proc, now float64) {
	d := &m.drv[p]
	// Busy processors do not poll: RA/CQ run at task/MAP boundaries and in
	// blocking states, exactly as the protocol prescribes.
	if d.busy || d.done || m.err != nil {
		return
	}
	m.now = now
	d.core.Poll(now)
	for {
		st, err := d.core.Advance(now)
		if err != nil {
			m.fail(err)
			return
		}
		switch st.Kind {
		case proto.RunMAP:
			cost := 0.0
			if !m.opt.Baseline {
				cost = m.model.MAPOverhead + m.model.MAPPerObject*float64(len(st.MAP.Frees)+len(st.MAP.Allocs))
			}
			if cost > 0 {
				d.busy = true
				m.opt.Trace.Add(trace.Span{Proc: int32(p), Kind: trace.MAP, Name: "MAP", Start: now, End: now + cost})
				m.push(now+cost, evMAPDone, p, 0, 0)
				return
			}
		case proto.RunTask:
			dur := m.model.TaskTime(&m.s.G.Tasks[st.Task])
			d.busy = true
			m.opt.Trace.Add(trace.Span{Proc: int32(p), Kind: trace.Task, Name: m.s.G.Tasks[st.Task].Name, Start: now, End: now + dur})
			m.push(now+dur, evTaskDone, p, 0, 0)
			return
		case proto.Blocked:
			// Poll already ran; the next arrival, slot release or wake event
			// re-enters step.
			return
		case proto.Finished:
			d.done = true
			return
		}
	}
}

// simBackend is the virtual-clock proto.Backend for one processor:
// simulated arrival counters, a capacity ledger instead of real buffers,
// learned-address sets, and slot FIFOs timed on the event queue.
type simBackend struct {
	m *sim
	p graph.Proc
	// arrivals counts delivered data messages per local volatile object.
	arrivals map[graph.ObjID]int32
	// lastSeq is the highest data-message sequence number delivered per
	// local object; lower-or-equal arrivals are duplicates and are
	// discarded. It deliberately survives free/realloc of the object (seqs
	// are monotone per (object, receiver) across the whole run), so a
	// duplicate landing after the buffer was recycled is still recognized —
	// mirroring the executor, where the old rma.Buffer handle keeps its
	// sequence watermark.
	lastSeq map[graph.ObjID]int32
	alloc   map[graph.ObjID]bool
	// addr marks (object, destination) pairs whose remote buffer address
	// this processor has learned through an address package.
	addr map[[2]int32]bool
	// addrSeen is the highest address-package sequence number consumed from
	// each source processor; packages at or below it are duplicates.
	addrSeen []int32
	// slots holds the in-flight address packages to this processor,
	// indexed by sender (FIFO, capacity = slotDepth).
	slots []slotFIFO
	// dupDropped counts the duplicate deliveries (data + address packages)
	// this processor discarded.
	dupDropped int
	used, peak int64
}

func newSimBackend(m *sim, p graph.Proc) *simBackend {
	be := &simBackend{
		m:        m,
		p:        p,
		arrivals: make(map[graph.ObjID]int32),
		lastSeq:  make(map[graph.ObjID]int32),
		alloc:    make(map[graph.ObjID]bool),
		addr:     make(map[[2]int32]bool),
		addrSeen: make([]int32, m.s.P),
		slots:    make([]slotFIFO, m.s.P),
	}
	// Permanent objects live on their owners for the whole run.
	for oi := range m.s.G.Objects {
		if m.s.G.Objects[oi].Owner == p {
			be.used += m.s.G.Objects[oi].Size
		}
	}
	be.peak = be.used
	return be
}

// arrive records a delivered data message (evMsg). The dedup check runs
// before the allocation check: a duplicated copy may land after the
// receiver consumed the original and freed the buffer, and must be
// discarded rather than flagged as a consistency violation (the same
// ordering rma.Buffer.Put uses).
func (be *simBackend) arrive(o graph.ObjID, seq int32) {
	if seq <= be.lastSeq[o] {
		be.dupDropped++
		return
	}
	if !be.m.opt.Baseline && !be.alloc[o] {
		be.m.fail(fmt.Errorf("machine: proc %d received message for unallocated object %q",
			be.p, be.m.s.G.Objects[o].Name))
		return
	}
	be.lastSeq[o] = seq
	be.arrivals[o]++
}

// ApplyMAP performs one memory allocation point on the capacity ledger.
func (be *simBackend) ApplyMAP(mp *mem.MAP) error {
	g := be.m.s.G
	for _, o := range mp.Frees {
		if !be.m.opt.Baseline && !be.alloc[o] {
			return fmt.Errorf("machine: proc %d MAP frees unallocated object %q", be.p, g.Objects[o].Name)
		}
		delete(be.alloc, o)
		delete(be.arrivals, o)
		be.used -= g.Objects[o].Size
	}
	for _, o := range mp.Allocs {
		be.alloc[o] = true
		if !be.m.opt.Baseline {
			// Fresh buffer: the arrival counter restarts, mirroring the real
			// allocator handing out a zero-arrival rma.Buffer.
			be.arrivals[o] = 0
		}
		be.used += g.Objects[o].Size
	}
	if be.used > be.peak {
		be.peak = be.used
	}
	return nil
}

// TryNotify deposits an address package into dst's slot FIFO; false while
// the FIFO is at slot depth (the receiver has not run RA yet). In baseline
// mode all addresses were exchanged during preprocessing, so the deposit is
// free and instantaneous.
func (be *simBackend) TryNotify(dst graph.Proc, objs []graph.ObjID, seq int32) bool {
	if be.m.opt.Baseline {
		return true
	}
	q := &be.m.drv[dst].be.slots[be.p]
	if len(q.times) >= be.m.slotDepth {
		return false
	}
	at := be.m.now + be.m.model.AddrLatency
	q.times = append(q.times, at)
	q.pkgs = append(q.pkgs, objs)
	q.seqs = append(q.seqs, seq)
	// Wake the destination when the package lands so its RA can run.
	be.m.push(at, evWake, dst, 0, 0)
	return true
}

// ReadAddresses is RA: consume every address package that has arrived by
// now, learn its addresses, and wake senders whose slot was freed.
// Duplicated deliveries (sequence number at or below the highest consumed
// from that source) free their slot but are otherwise discarded uncounted.
func (be *simBackend) ReadAddresses() int {
	if be.m.opt.Baseline {
		return 0
	}
	n := 0
	for src := 0; src < be.m.s.P; src++ {
		q := &be.slots[src]
		freed := false
		for len(q.times) > 0 && q.times[0] <= be.m.now {
			if q.seqs[0] <= be.addrSeen[src] {
				be.dupDropped++
			} else {
				be.addrSeen[src] = q.seqs[0]
				for _, o := range q.pkgs[0] {
					be.addr[[2]int32{int32(o), int32(src)}] = true
				}
				n++
			}
			q.times = q.times[1:]
			q.pkgs = q.pkgs[1:]
			q.seqs = q.seqs[1:]
			freed = true
		}
		if freed {
			// The sender may be blocked in MAP state on the full slot.
			be.m.push(be.m.now, evWake, graph.Proc(src), 0, 0)
		}
	}
	return n
}

// The addr map is keyed the other way around from the slot bookkeeping:
// this processor is the *producer*, snd.Dst the consumer that allocated
// the buffer and sent the package.
func (be *simBackend) AddrKnown(snd proto.Send) bool {
	if be.m.opt.Baseline {
		return true
	}
	return be.addr[[2]int32{int32(snd.Obj), int32(snd.Dst)}]
}

// SendData dispatches one data message on the virtual network, tagged with
// its version sequence number so the receiver can discard duplicates.
func (be *simBackend) SendData(snd proto.Send) {
	be.m.pushMsg(be.m.now+be.m.model.CommTime(be.m.s.G.Objects[snd.Obj].Size), snd.Dst, snd.Obj, snd.Seq)
}

// SendCtl delivers one control signal after the message latency.
func (be *simBackend) SendCtl(t graph.TaskID) {
	be.m.push(be.m.now+be.m.model.Latency, evCtl, 0, 0, t)
}

func (be *simBackend) CtlCount(t graph.TaskID) int32 { return be.m.ctl[t] }

func (be *simBackend) Arrived(o graph.ObjID) (int32, bool) {
	if !be.m.opt.Baseline && !be.alloc[o] {
		return 0, false
	}
	return be.arrivals[o], true
}

// WakeAfter schedules a future wake event: the simulator's binding of the
// Backend timer contract. Nothing else is guaranteed to re-examine this
// processor after fault injection delayed one of its messages or the
// reliability layer armed a retransmission timer. delay 0 (a plain delay
// fault) wakes one address latency later; a positive delay wakes exactly
// when the timer expires.
func (be *simBackend) WakeAfter(delay float64) {
	if delay <= 0 {
		delay = be.m.model.AddrLatency
	}
	be.m.push(be.m.now+delay, evWake, be.p, 0, 0)
}
