// Package machine is the discrete-event simulator of a distributed-memory
// message-passing machine with remote memory access, standing in for the
// paper's Cray-T3D (see DESIGN.md §2). It executes the same five-state
// protocol as the concurrent executor — the MAP plan, address packages
// through single-slot buffers, suspended sends, arrival-threshold
// receives — but against a virtual clock with the published cost constants
// (103 MFLOPS per node, 2.7 µs message overhead, 128 MB/s bandwidth), so
// the paper's timing tables can be regenerated deterministically.
package machine

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configure a simulation.
type Options struct {
	// Baseline simulates the original RAPID executor: the whole volatile
	// space is allocated up front, all addresses are exchanged during
	// preprocessing and memory management costs nothing. Use with a
	// full-capacity plan to obtain the "100% memory, no managing overhead"
	// comparison base of Tables 2 and 3.
	Baseline bool
	// SlotDepth is the number of in-flight address packages each
	// (sender, receiver) pair may have (default 1 — the paper's
	// "no address buffering" decision; larger values are an ablation).
	SlotDepth int
	// Trace, if non-nil, records task and MAP spans.
	Trace *trace.Recorder
}

// Result reports a completed simulation.
type Result struct {
	// ParallelTime is the completion time of the last task (seconds).
	ParallelTime float64
	// AvgMAPs is the average number of MAPs executed per processor.
	AvgMAPs float64
	// Messages is the number of data messages delivered.
	Messages int
	// AddrPackages is the number of address packages delivered.
	AddrPackages int
}

// event kinds
const (
	evWake int8 = iota // re-examine processor state
	evTaskDone
	evMAPDone
	evMsg // data message arrival: increments arrivals[dst][obj]
	evCtl // control signal arrival: increments ctl[task]
)

type event struct {
	t    float64
	seq  int64 // tie-break for determinism
	kind int8
	proc graph.Proc  // evWake/evTaskDone/evMAPDone/evMsg
	obj  graph.ObjID // evMsg
	task graph.TaskID
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// proc states
const (
	stAdvance    int8 = iota // ready to make progress
	stMAPBusy                // charging MAP cost
	stMAPBlocked             // waiting for an address slot
	stBusy                   // executing a task
	stRECBlocked             // waiting for data/control arrivals
	stENDBlocked             // draining suspended sends
	stDone
)

type procSim struct {
	state    int8
	pos      int32
	mapIdx   int
	pendPkgs []graph.Proc // destinations still awaiting our address package (current MAP)
	pkgObjs  map[graph.Proc][]graph.ObjID
	susp     []proto.Send
	maps     int
	curTask  graph.TaskID
}

type sim struct {
	s      *sched.Schedule
	plan   *mem.Plan
	model  sched.CostModel
	opt    Options
	tables *proto.Tables

	q   eventQueue
	seq int64

	procs    []procSim
	arrivals []map[graph.ObjID]int32 // per proc
	ctl      []int32                 // per task
	// addrKnown[producerProc] maps (obj, consumer) -> true once the
	// producer has the consumer's buffer address.
	addrKnown []map[[2]int32]bool
	// slots[dst][src] holds the in-flight address packages from src to dst
	// (FIFO, capacity = SlotDepth).
	slots     [][]slotFIFO
	slotDepth int

	lastTaskFinish float64
	messages       int
	addrPkgs       int
}

func (m *sim) push(t float64, kind int8, p graph.Proc, o graph.ObjID, task graph.TaskID) {
	m.seq++
	heap.Push(&m.q, event{t: t, seq: m.seq, kind: kind, proc: p, obj: o, task: task})
}

// Simulate runs the schedule under the plan and cost model.
func Simulate(s *sched.Schedule, plan *mem.Plan, model sched.CostModel, opt Options) (*Result, error) {
	if !plan.Executable {
		return nil, fmt.Errorf("machine: plan is not executable under capacity %d", plan.Capacity)
	}
	depth := opt.SlotDepth
	if depth < 1 {
		depth = 1
	}
	m := &sim{
		s: s, plan: plan, model: model, opt: opt,
		tables:    proto.Derive(s),
		procs:     make([]procSim, s.P),
		arrivals:  make([]map[graph.ObjID]int32, s.P),
		ctl:       make([]int32, s.G.NumTasks()),
		addrKnown: make([]map[[2]int32]bool, s.P),
		slots:     make([][]slotFIFO, s.P),
		slotDepth: depth,
	}
	for p := 0; p < s.P; p++ {
		m.arrivals[p] = make(map[graph.ObjID]int32)
		m.addrKnown[p] = make(map[[2]int32]bool)
		m.slots[p] = make([]slotFIFO, s.P)
		m.push(0, evWake, graph.Proc(p), 0, 0)
	}
	if opt.Baseline {
		// All addresses exchanged during preprocessing.
		for p := range m.addrKnown {
			m.addrKnown[p] = nil // nil means "everything known"
		}
	}

	for m.q.Len() > 0 {
		ev := heap.Pop(&m.q).(event)
		switch ev.kind {
		case evMsg:
			m.arrivals[ev.proc][ev.obj]++
			m.messages++
			m.step(ev.proc, ev.t)
		case evCtl:
			m.ctl[ev.task]++
			m.step(m.s.Assign[ev.task], ev.t)
		case evTaskDone:
			m.taskDone(ev.proc, ev.t)
		case evMAPDone:
			m.procs[ev.proc].state = stAdvance
			m.step(ev.proc, ev.t)
		case evWake:
			m.step(ev.proc, ev.t)
		}
	}
	for p := range m.procs {
		if m.procs[p].state != stDone {
			return nil, fmt.Errorf("machine: deadlock: processor %d stuck in state %d at pos %d",
				p, m.procs[p].state, m.procs[p].pos)
		}
	}
	totalMAPs := 0
	for p := range m.procs {
		totalMAPs += m.procs[p].maps
	}
	return &Result{
		ParallelTime: m.lastTaskFinish,
		AvgMAPs:      float64(totalMAPs) / float64(s.P),
		Messages:     m.messages,
		AddrPackages: m.addrPkgs,
	}, nil
}

// slotFIFO is the queue of in-flight address packages for one
// (receiver, sender) pair.
type slotFIFO struct {
	times []float64
	pkgs  [][]graph.ObjID
}

// ra consumes address packages pending at producer proc p (arrived by now),
// freeing the senders' slots and waking them.
func (m *sim) ra(p graph.Proc, now float64) {
	if m.addrKnown[p] == nil {
		return // baseline: everything known
	}
	for src := 0; src < m.s.P; src++ {
		q := &m.slots[p][src]
		freed := false
		for len(q.times) > 0 && q.times[0] <= now {
			for _, o := range q.pkgs[0] {
				m.addrKnown[p][[2]int32{int32(o), int32(src)}] = true
			}
			q.times = q.times[1:]
			q.pkgs = q.pkgs[1:]
			m.addrPkgs++
			freed = true
		}
		if freed {
			// The consumer (src of the package) may be blocked waiting for
			// a free slot; wake it.
			m.push(now, evWake, graph.Proc(src), 0, 0)
		}
	}
}

// cq dispatches suspended sends whose addresses are now known, FIFO per
// (object, destination).
func (m *sim) cq(p graph.Proc, now float64) {
	ps := &m.procs[p]
	if len(ps.susp) == 0 {
		return
	}
	blocked := make(map[[2]int32]bool)
	kept := ps.susp[:0]
	for _, snd := range ps.susp {
		k := [2]int32{int32(snd.Obj), int32(snd.Dst)}
		if blocked[k] || !m.addrIsKnown(p, snd) {
			blocked[k] = true
			kept = append(kept, snd)
			continue
		}
		m.deliver(p, snd, now)
	}
	ps.susp = kept
}

func (m *sim) addrIsKnown(p graph.Proc, snd proto.Send) bool {
	if m.addrKnown[p] == nil {
		return true
	}
	return m.addrKnown[p][[2]int32{int32(snd.Obj), int32(snd.Dst)}]
}

func (m *sim) deliver(p graph.Proc, snd proto.Send, now float64) {
	m.push(now+m.model.CommTime(m.s.G.Objects[snd.Obj].Size), evMsg, snd.Dst, snd.Obj, 0)
}

// step advances processor p as far as it can at time now.
func (m *sim) step(p graph.Proc, now float64) {
	ps := &m.procs[p]
	// Busy processors do not poll: RA/CQ run at task/MAP boundaries and in
	// blocking states, exactly as in the protocol.
	if ps.state == stDone || ps.state == stMAPBusy || ps.state == stBusy {
		return
	}
	m.ra(p, now)
	m.cq(p, now)

	order := m.s.Order[p]
	maps := m.plan.Procs[p].MAPs
	for {
		// Pending address packages from the current MAP?
		if len(ps.pendPkgs) > 0 {
			if !m.sendPkgs(p, now) {
				ps.state = stMAPBlocked
				return
			}
		}
		// MAP at this position?
		if ps.mapIdx < len(maps) && maps[ps.mapIdx].Pos == ps.pos {
			mp := &maps[ps.mapIdx]
			ps.mapIdx++
			ps.maps++
			// Queue this MAP's address packages (sent after the MAP work).
			if !m.opt.Baseline {
				for dst := range mp.Notify {
					ps.pendPkgs = append(ps.pendPkgs, dst)
				}
				sortProcs(ps.pendPkgs)
			}
			ps.curMAPNotify(m, mp)
			cost := 0.0
			if !m.opt.Baseline {
				cost = m.model.MAPOverhead + m.model.MAPPerObject*float64(len(mp.Frees)+len(mp.Allocs))
			}
			if cost > 0 {
				ps.state = stMAPBusy
				m.opt.Trace.Add(trace.Span{Proc: int32(p), Kind: trace.MAP, Name: "MAP", Start: now, End: now + cost})
				m.push(now+cost, evMAPDone, p, 0, 0)
				return
			}
			continue
		}
		if int(ps.pos) >= len(order) {
			// END state.
			if len(ps.susp) > 0 {
				ps.state = stENDBlocked
				return
			}
			ps.state = stDone
			return
		}
		// REC state for the next task.
		t := order[ps.pos]
		if !m.taskReady(p, t) {
			ps.state = stRECBlocked
			return
		}
		// EXE.
		dur := m.model.TaskTime(&m.s.G.Tasks[t])
		ps.state = stBusy
		ps.curTask = t
		m.opt.Trace.Add(trace.Span{Proc: int32(p), Kind: trace.Task, Name: m.s.G.Tasks[t].Name, Start: now, End: now + dur})
		m.push(now+dur, evTaskDone, p, 0, 0)
		return
	}
}

// curMAPNotify stores the notify object lists into the slot bookkeeping for
// later sending (slots are occupied when actually sent).
func (ps *procSim) curMAPNotify(m *sim, mp *mem.MAP) {
	if m.opt.Baseline {
		return
	}
	// Remember the package contents per destination for sendPkgs.
	if ps.pkgObjs == nil {
		ps.pkgObjs = make(map[graph.Proc][]graph.ObjID)
	}
	for dst, objs := range mp.Notify {
		ps.pkgObjs[dst] = append(ps.pkgObjs[dst], objs...)
	}
}

// sendPkgs attempts to deposit all pending address packages; it reports
// whether every package went out.
func (m *sim) sendPkgs(p graph.Proc, now float64) bool {
	ps := &m.procs[p]
	remaining := ps.pendPkgs[:0]
	for _, dst := range ps.pendPkgs {
		q := &m.slots[dst][p]
		if len(q.times) >= m.slotDepth {
			remaining = append(remaining, dst)
			continue
		}
		q.times = append(q.times, now+m.model.AddrLatency)
		q.pkgs = append(q.pkgs, ps.pkgObjs[dst])
		delete(ps.pkgObjs, dst)
		// Wake the destination when the package lands so its RA can run.
		m.push(now+m.model.AddrLatency, evWake, dst, 0, 0)
	}
	ps.pendPkgs = remaining
	return len(remaining) == 0
}

func (m *sim) taskReady(p graph.Proc, t graph.TaskID) bool {
	if m.ctl[t] < m.tables.CtlNeed[t] {
		return false
	}
	for _, need := range m.tables.Needs[t] {
		if m.arrivals[p][need.Obj] < need.MinArrivals {
			return false
		}
	}
	return true
}

func (m *sim) taskDone(p graph.Proc, now float64) {
	ps := &m.procs[p]
	t := ps.curTask
	if now > m.lastTaskFinish {
		m.lastTaskFinish = now
	}
	// SND state.
	for _, snd := range m.tables.Sends[t] {
		if m.addrIsKnown(p, snd) {
			m.deliver(p, snd, now)
		} else {
			ps.susp = append(ps.susp, snd)
		}
	}
	for _, v := range m.tables.CtlSends[t] {
		m.push(now+m.model.Latency, evCtl, 0, 0, v)
	}
	ps.pos++
	ps.state = stAdvance
	m.step(p, now)
}

func sortProcs(a []graph.Proc) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
