package machine

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/util"
)

// TestSimulatorAndExecutorAgree cross-validates the two engines: for the
// same schedule and MAP plan, the discrete-event simulator and the real
// concurrent executor must perform the same number of MAPs per processor
// and both must complete (they share the protocol, so divergence would
// mean one of them implements it wrong).
func TestSimulatorAndExecutorAgree(t *testing.T) {
	rng := util.NewRNG(909)
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(50), 8+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}
		simRes, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatalf("trial %d sim: %v", trial, err)
		}
		exRes, err := exec.Run(s, pl, exec.Config{})
		if err != nil {
			t.Fatalf("trial %d exec: %v", trial, err)
		}
		total := 0
		for q := 0; q < p; q++ {
			total += exRes.MAPsExecuted[q]
		}
		if simRes.AvgMAPs != float64(total)/float64(p) {
			t.Fatalf("trial %d: simulator AvgMAPs %v != executor %v",
				trial, simRes.AvgMAPs, float64(total)/float64(p))
		}
		if simRes.ParallelTime <= 0 {
			t.Fatalf("trial %d: non-positive parallel time", trial)
		}
	}
}

// TestSimulatorDeterminism: identical inputs must give identical results
// (the event queue is fully ordered by (time, seq)).
func TestSimulatorDeterminism(t *testing.T) {
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleMPO(g, assign, 2, sched.T3D())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	var prev *Result
	for i := 0; i < 5; i++ {
		res, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && (res.ParallelTime != prev.ParallelTime ||
			res.Messages != prev.Messages || res.AddrPackages != prev.AddrPackages) {
			t.Fatalf("run %d differs: %+v vs %+v", i, res, prev)
		}
		prev = res
	}
}
