package machine

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/util"
)

// TestSimulatorAndExecutorAgree cross-validates the two engines: for the
// same schedule and MAP plan, the discrete-event simulator and the real
// concurrent executor must perform the same number of MAPs per processor
// and both must complete (they share the protocol, so divergence would
// mean one of them implements it wrong).
func TestSimulatorAndExecutorAgree(t *testing.T) {
	rng := util.NewRNG(909)
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(50), 8+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}
		simRes, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatalf("trial %d sim: %v", trial, err)
		}
		exRes, err := exec.Run(s, pl, exec.Config{})
		if err != nil {
			t.Fatalf("trial %d exec: %v", trial, err)
		}
		total := 0
		for q := 0; q < p; q++ {
			total += exRes.MAPsExecuted[q]
		}
		if simRes.AvgMAPs != float64(total)/float64(p) {
			t.Fatalf("trial %d: simulator AvgMAPs %v != executor %v",
				trial, simRes.AvgMAPs, float64(total)/float64(p))
		}
		if simRes.ParallelTime <= 0 {
			t.Fatalf("trial %d: non-positive parallel time", trial)
		}
	}
}

// TestRandomizedEquivalence is the backend-equivalence suite: the
// wall-clock executor and the virtual-clock simulator now drive the same
// protocol core, so every protocol-determined quantity must agree exactly —
// across generated graphs, all three ordering heuristics, and fault
// injection. Three layers:
//
//  1. Fault-free: per-processor MAP counts, per-processor peak memory
//     (permanent + volatile), total messages and total address packages
//     agree between the backends.
//  2. Faulty (25% delayed address packages and data messages): both
//     backends terminate (Theorem 1 under perturbation) and every quantity
//     from layer 1 is identical to the fault-free run.
//  3. Forced suspension (DataFrac 1): every data message goes through the
//     suspended-send queue, making the per-processor suspended-send totals
//     protocol-determined; both backends must report exactly the
//     per-processor send counts of the communication tables.
//
// (Suspended-send totals in layers 1–2 are timing-dependent — a send
// suspends only if it beats its address package — so only the forced mode
// pins them; see DESIGN.md.)
func TestRandomizedEquivalence(t *testing.T) {
	rng := util.NewRNG(4242)
	for trial := 0; trial < 12; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(50), 8+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}

		run := func(f proto.Faults) (*Result, *exec.Result) {
			simRes, err := Simulate(s, pl, sched.T3D(), Options{Faults: f})
			if err != nil {
				t.Fatalf("trial %d sim (faults %+v): %v", trial, f, err)
			}
			exRes, err := exec.Run(s, pl, exec.Config{Faults: f})
			if err != nil {
				t.Fatalf("trial %d exec (faults %+v): %v", trial, f, err)
			}
			return simRes, exRes
		}
		check := func(mode string, simRes *Result, exRes *exec.Result) {
			for q := 0; q < p; q++ {
				if simRes.MAPsPerProc[q] != exRes.MAPsExecuted[q] {
					t.Errorf("trial %d %s: proc %d MAPs sim %d != exec %d",
						trial, mode, q, simRes.MAPsPerProc[q], exRes.MAPsExecuted[q])
				}
				if simRes.PeakUnits[q] != exRes.PeakUnits[q] {
					t.Errorf("trial %d %s: proc %d peak sim %d != exec %d",
						trial, mode, q, simRes.PeakUnits[q], exRes.PeakUnits[q])
				}
			}
			if simRes.Messages != exRes.Messages {
				t.Errorf("trial %d %s: messages sim %d != exec %d", trial, mode, simRes.Messages, exRes.Messages)
			}
			if simRes.AddrPackages != exRes.AddrPackages {
				t.Errorf("trial %d %s: addr packages sim %d != exec %d",
					trial, mode, simRes.AddrPackages, exRes.AddrPackages)
			}
		}

		cleanSim, cleanEx := run(proto.Faults{})
		check("clean", cleanSim, cleanEx)

		faultySim, faultyEx := run(proto.Faults{Seed: uint64(trial) + 1, AddrFrac: 0.25, DataFrac: 0.25})
		check("faulty", faultySim, faultyEx)
		// Fault injection delays messages; it must not change any outcome.
		if faultySim.Messages != cleanSim.Messages || faultySim.AddrPackages != cleanSim.AddrPackages {
			t.Errorf("trial %d: faulty sim traffic (%d msgs, %d pkgs) != clean (%d, %d)",
				trial, faultySim.Messages, faultySim.AddrPackages, cleanSim.Messages, cleanSim.AddrPackages)
		}
		for q := 0; q < p; q++ {
			if faultySim.MAPsPerProc[q] != cleanSim.MAPsPerProc[q] || faultySim.PeakUnits[q] != cleanSim.PeakUnits[q] {
				t.Errorf("trial %d: faulty run changed proc %d MAPs/peak", trial, q)
			}
		}

		// Forced suspension: per-proc suspended totals become deterministic
		// (every send suspends exactly once) and must equal the tables.
		allSim, allEx := run(proto.Faults{Seed: 7, DataFrac: 1})
		check("forced", allSim, allEx)
		tables := proto.Derive(s)
		for q := 0; q < p; q++ {
			want := 0
			for _, task := range s.Order[q] {
				want += len(tables.Sends[task])
			}
			if allSim.SuspendedSends[q] != want || allEx.SuspendedSends[q] != want {
				t.Errorf("trial %d: proc %d forced suspensions sim %d exec %d, want %d (table sends)",
					trial, q, allSim.SuspendedSends[q], allEx.SuspendedSends[q], want)
			}
		}
	}
}

// TestSimulatorDeterminism: identical inputs must give identical results
// (the event queue is fully ordered by (time, seq)).
func TestSimulatorDeterminism(t *testing.T) {
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleMPO(g, assign, 2, sched.T3D())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	var prev *Result
	for i := 0; i < 5; i++ {
		res, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && (res.ParallelTime != prev.ParallelTime ||
			res.Messages != prev.Messages || res.AddrPackages != prev.AddrPackages) {
			t.Fatalf("run %d differs: %+v vs %+v", i, res, prev)
		}
		prev = res
	}
}
