package machine

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sched"
	"repro/internal/util"
)

// TestSimulatorAndExecutorAgree cross-validates the two engines: for the
// same schedule and MAP plan, the discrete-event simulator and the real
// concurrent executor must perform the same number of MAPs per processor
// and both must complete (they share the protocol, so divergence would
// mean one of them implements it wrong).
func TestSimulatorAndExecutorAgree(t *testing.T) {
	rng := util.NewRNG(909)
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(50), 8+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}
		simRes, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatalf("trial %d sim: %v", trial, err)
		}
		exRes, err := exec.Run(s, pl, exec.Config{})
		if err != nil {
			t.Fatalf("trial %d exec: %v", trial, err)
		}
		total := 0
		for q := 0; q < p; q++ {
			total += exRes.MAPsExecuted[q]
		}
		if simRes.AvgMAPs != float64(total)/float64(p) {
			t.Fatalf("trial %d: simulator AvgMAPs %v != executor %v",
				trial, simRes.AvgMAPs, float64(total)/float64(p))
		}
		if simRes.ParallelTime <= 0 {
			t.Fatalf("trial %d: non-positive parallel time", trial)
		}
	}
}

// TestRandomizedEquivalence is the backend-equivalence suite: the
// wall-clock executor and the virtual-clock simulator now drive the same
// protocol core, so every protocol-determined quantity must agree exactly —
// across generated graphs, all three ordering heuristics, and fault
// injection. Three layers:
//
//  1. Fault-free: per-processor MAP counts, per-processor peak memory
//     (permanent + volatile), total messages and total address packages
//     agree between the backends.
//  2. Faulty (25% delayed address packages and data messages): both
//     backends terminate (Theorem 1 under perturbation) and every quantity
//     from layer 1 is identical to the fault-free run.
//  3. Forced suspension (DataFrac 1): every data message goes through the
//     suspended-send queue, making the per-processor suspended-send totals
//     protocol-determined; both backends must report exactly the
//     per-processor send counts of the communication tables.
//
// (Suspended-send totals in layers 1–2 are timing-dependent — a send
// suspends only if it beats its address package — so only the forced mode
// pins them; see DESIGN.md.)
func TestRandomizedEquivalence(t *testing.T) {
	rng := util.NewRNG(4242)
	for trial := 0; trial < 12; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(50), 8+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}

		run := func(f proto.Faults) (*Result, *exec.Result) {
			simRes, err := Simulate(s, pl, sched.T3D(), Options{Faults: f})
			if err != nil {
				t.Fatalf("trial %d sim (faults %+v): %v", trial, f, err)
			}
			exRes, err := exec.Run(s, pl, exec.Config{Faults: f})
			if err != nil {
				t.Fatalf("trial %d exec (faults %+v): %v", trial, f, err)
			}
			return simRes, exRes
		}
		check := func(mode string, simRes *Result, exRes *exec.Result) {
			for q := 0; q < p; q++ {
				if simRes.MAPsPerProc[q] != exRes.MAPsExecuted[q] {
					t.Errorf("trial %d %s: proc %d MAPs sim %d != exec %d",
						trial, mode, q, simRes.MAPsPerProc[q], exRes.MAPsExecuted[q])
				}
				if simRes.PeakUnits[q] != exRes.PeakUnits[q] {
					t.Errorf("trial %d %s: proc %d peak sim %d != exec %d",
						trial, mode, q, simRes.PeakUnits[q], exRes.PeakUnits[q])
				}
			}
			if simRes.Messages != exRes.Messages {
				t.Errorf("trial %d %s: messages sim %d != exec %d", trial, mode, simRes.Messages, exRes.Messages)
			}
			if simRes.AddrPackages != exRes.AddrPackages {
				t.Errorf("trial %d %s: addr packages sim %d != exec %d",
					trial, mode, simRes.AddrPackages, exRes.AddrPackages)
			}
		}

		cleanSim, cleanEx := run(proto.Faults{})
		check("clean", cleanSim, cleanEx)

		faultySim, faultyEx := run(proto.Faults{Seed: uint64(trial) + 1, AddrFrac: 0.25, DataFrac: 0.25})
		check("faulty", faultySim, faultyEx)
		// Fault injection delays messages; it must not change any outcome.
		if faultySim.Messages != cleanSim.Messages || faultySim.AddrPackages != cleanSim.AddrPackages {
			t.Errorf("trial %d: faulty sim traffic (%d msgs, %d pkgs) != clean (%d, %d)",
				trial, faultySim.Messages, faultySim.AddrPackages, cleanSim.Messages, cleanSim.AddrPackages)
		}
		for q := 0; q < p; q++ {
			if faultySim.MAPsPerProc[q] != cleanSim.MAPsPerProc[q] || faultySim.PeakUnits[q] != cleanSim.PeakUnits[q] {
				t.Errorf("trial %d: faulty run changed proc %d MAPs/peak", trial, q)
			}
		}

		// Forced suspension: per-proc suspended totals become deterministic
		// (every send suspends exactly once) and must equal the tables.
		allSim, allEx := run(proto.Faults{Seed: 7, DataFrac: 1})
		check("forced", allSim, allEx)
		tables := proto.Derive(s)
		for q := 0; q < p; q++ {
			want := 0
			for _, task := range s.Order[q] {
				want += len(tables.Sends[task])
			}
			if allSim.SuspendedSends[q] != want || allEx.SuspendedSends[q] != want {
				t.Errorf("trial %d: proc %d forced suspensions sim %d exec %d, want %d (table sends)",
					trial, q, allSim.SuspendedSends[q], allEx.SuspendedSends[q], want)
			}
		}
	}
}

// TestLossDupEquivalence is the loss/duplication layer of the
// backend-equivalence suite: at 25% message loss and 10% duplication the
// reliability layer must make both backends terminate with every
// protocol-determined quantity — per-processor MAP counts, per-processor
// peak memory, delivered-message and address-package totals — identical to
// each other AND to the fault-free run. Because drop/dup verdicts are pure
// functions of (seed, message identity, attempt), the sender-side
// reliability counters must also agree exactly between the backends, the
// retransmit counters must be live, and a zero-Faults run must report zero
// retransmits.
func TestLossDupEquivalence(t *testing.T) {
	rng := util.NewRNG(5151)
	totalRetrans, totalDupDropped := 0, 0
	for trial := 0; trial < 8; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(50), 8+rng.Intn(12), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		h := []sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3]
		s, err := sched.ScheduleWith(h, g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}

		run := func(f proto.Faults) (*Result, *exec.Result) {
			simRes, err := Simulate(s, pl, sched.T3D(), Options{Faults: f})
			if err != nil {
				t.Fatalf("trial %d sim (faults %+v): %v", trial, f, err)
			}
			exRes, err := exec.Run(s, pl, exec.Config{Faults: f})
			if err != nil {
				t.Fatalf("trial %d exec (faults %+v): %v", trial, f, err)
			}
			return simRes, exRes
		}

		cleanSim, cleanEx := run(proto.Faults{})
		for q := 0; q < p; q++ {
			for _, r := range []proto.Reliability{cleanSim.Reliability[q], cleanEx.Reliability[q]} {
				if r.Retransmits != 0 || r.Dropped != 0 || r.DupsSent != 0 || r.DupDropped != 0 {
					t.Errorf("trial %d: zero-Faults run reports reliability activity on proc %d: %+v", trial, q, r)
				}
			}
		}

		lossySim, lossyEx := run(proto.Faults{Seed: uint64(trial) + 1, DropFrac: 0.25, DupFrac: 0.10})
		for q := 0; q < p; q++ {
			if lossySim.MAPsPerProc[q] != cleanSim.MAPsPerProc[q] || lossyEx.MAPsExecuted[q] != cleanSim.MAPsPerProc[q] {
				t.Errorf("trial %d: proc %d MAPs under loss: sim %d exec %d, clean %d",
					trial, q, lossySim.MAPsPerProc[q], lossyEx.MAPsExecuted[q], cleanSim.MAPsPerProc[q])
			}
			if lossySim.PeakUnits[q] != cleanSim.PeakUnits[q] || lossyEx.PeakUnits[q] != cleanSim.PeakUnits[q] {
				t.Errorf("trial %d: proc %d peak under loss: sim %d exec %d, clean %d",
					trial, q, lossySim.PeakUnits[q], lossyEx.PeakUnits[q], cleanSim.PeakUnits[q])
			}
			// Sender-side reliability counters are deterministic functions of
			// the fault plan, so the backends must agree per processor.
			sr, er := lossySim.Reliability[q], lossyEx.Reliability[q]
			if sr.Retransmits != er.Retransmits || sr.Dropped != er.Dropped ||
				sr.DupsSent != er.DupsSent || sr.Acked != er.Acked {
				t.Errorf("trial %d: proc %d sender reliability diverges: sim %+v exec %+v", trial, q, sr, er)
			}
		}
		if lossySim.Messages != cleanSim.Messages || lossyEx.Messages != cleanEx.Messages ||
			lossySim.Messages != lossyEx.Messages {
			t.Errorf("trial %d: delivered messages under loss: sim %d exec %d, clean %d (must all match)",
				trial, lossySim.Messages, lossyEx.Messages, cleanSim.Messages)
		}
		if lossySim.AddrPackages != cleanSim.AddrPackages || lossyEx.AddrPackages != lossySim.AddrPackages {
			t.Errorf("trial %d: addr packages under loss: sim %d exec %d, clean %d (must all match)",
				trial, lossySim.AddrPackages, lossyEx.AddrPackages, cleanSim.AddrPackages)
		}
		simTot := proto.SumReliability(lossySim.Reliability)
		exTot := proto.SumReliability(lossyEx.Reliability)
		if simTot.Retransmits != simTot.Dropped {
			t.Errorf("trial %d: sim %d retransmits for %d drops (every loss must be retransmitted)",
				trial, simTot.Retransmits, simTot.Dropped)
		}
		// Every duplicate a receiver observed was discarded; a duplicated
		// address package deposited after its receiver finished may stay in
		// flight, so DupDropped is bounded by DupsSent rather than equal.
		if simTot.DupDropped > simTot.DupsSent || exTot.DupDropped > exTot.DupsSent {
			t.Errorf("trial %d: more duplicates discarded than injected (sim %+v, exec %+v)", trial, simTot, exTot)
		}
		totalRetrans += simTot.Retransmits + exTot.Retransmits
		totalDupDropped += simTot.DupDropped + exTot.DupDropped
	}
	if totalRetrans == 0 {
		t.Error("25% loss caused no retransmissions across all trials")
	}
	if totalDupDropped == 0 {
		t.Error("10% duplication caused no receiver-side discards across all trials")
	}
}

// TestSuspendedQueueUnderLoss combines forced suspension (DataFrac 1) with
// message loss: every data message goes through the suspended-send queue
// AND a quarter of all transmissions are lost, so every suspended message
// must eventually be retransmitted and delivered exactly once — the
// per-processor suspension totals still equal the communication tables and
// the delivered-message totals still equal the fault-free run, in both
// backends.
func TestSuspendedQueueUnderLoss(t *testing.T) {
	rng := util.NewRNG(7171)
	sawRetrans := false
	for trial := 0; trial < 4; trial++ {
		p := 2 + rng.Intn(4)
		g := randomOwnerComputeDAG(rng, 30+rng.Intn(40), 8+rng.Intn(10), p)
		assign, err := sched.OwnerComputeAssign(g, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleWith([]sched.Heuristic{sched.RCP, sched.MPO, sched.DTS}[trial%3],
			g, assign, p, sched.T3D(), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := mem.NewPlan(s, s.MinMem())
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Executable {
			pl, err = mem.NewPlan(s, s.TOT())
			if err != nil || !pl.Executable {
				t.Fatal("TOT plan must be executable")
			}
		}
		cleanSim, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		f := proto.Faults{Seed: uint64(trial) + 3, DataFrac: 1, DropFrac: 0.25}
		simRes, err := Simulate(s, pl, sched.T3D(), Options{Faults: f})
		if err != nil {
			t.Fatalf("trial %d sim: %v", trial, err)
		}
		exRes, err := exec.Run(s, pl, exec.Config{Faults: f})
		if err != nil {
			t.Fatalf("trial %d exec: %v", trial, err)
		}
		tables := proto.Derive(s)
		for q := 0; q < p; q++ {
			want := 0
			for _, task := range s.Order[q] {
				want += len(tables.Sends[task])
			}
			if simRes.SuspendedSends[q] != want || exRes.SuspendedSends[q] != want {
				t.Errorf("trial %d: proc %d suspensions sim %d exec %d, want %d (each message suspends exactly once)",
					trial, q, simRes.SuspendedSends[q], exRes.SuspendedSends[q], want)
			}
		}
		if simRes.Messages != cleanSim.Messages || exRes.Messages != cleanSim.Messages {
			t.Errorf("trial %d: delivered messages sim %d exec %d, clean %d (each message delivered exactly once)",
				trial, simRes.Messages, exRes.Messages, cleanSim.Messages)
		}
		for _, tot := range []proto.Reliability{proto.SumReliability(simRes.Reliability), proto.SumReliability(exRes.Reliability)} {
			if tot.Retransmits != tot.Dropped {
				t.Errorf("trial %d: %d retransmits for %d drops", trial, tot.Retransmits, tot.Dropped)
			}
			if tot.Retransmits > 0 {
				sawRetrans = true
			}
		}
	}
	if !sawRetrans {
		t.Error("25% loss caused no retransmissions across all trials")
	}
}

// TestSimulatorDeterminism: identical inputs must give identical results
// (the event queue is fully ordered by (time, seq)).
func TestSimulatorDeterminism(t *testing.T) {
	g := sched.Figure2DAG()
	assign, err := sched.OwnerComputeAssign(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleMPO(g, assign, 2, sched.T3D())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := mem.NewPlan(s, s.MinMem())
	if err != nil {
		t.Fatal(err)
	}
	var prev *Result
	for i := 0; i < 5; i++ {
		res, err := Simulate(s, pl, sched.T3D(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && (res.ParallelTime != prev.ParallelTime ||
			res.Messages != prev.Messages || res.AddrPackages != prev.AddrPackages) {
			t.Fatalf("run %d differs: %+v vs %+v", i, res, prev)
		}
		prev = res
	}
}
