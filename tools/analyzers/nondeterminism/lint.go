package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// Finding is one nondeterminism diagnostic.
type Finding struct {
	Pos token.Position
	Msg string
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s", f.Pos, f.Msg) }

// suppressComment marks a line as deliberately deterministic despite the
// pattern (e.g. a map range whose results are collected and sorted, or one
// that only folds with a commutative operation). A reason after the marker
// is encouraged: //det:ok collected and sorted below
const suppressComment = "//det:ok"

// listedPackage is the subset of `go list -json` output the linter needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

// goList runs `go list -json <args>` and decodes the JSON stream.
func goList(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer with gc export data located via
// `go list -export -deps`, so the linter needs nothing beyond the standard
// toolchain.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// lintFiles typechecks the parsed files of one package and returns the
// nondeterminism findings, sorted by position.
func lintFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) ([]Finding, error) {
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	if _, err := conf.Check(path, fset, files, info); err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}

	var findings []Finding
	for _, file := range files {
		suppressed := suppressedLines(fset, file)
		report := func(n ast.Node, format string, args ...any) {
			pos := fset.Position(n.Pos())
			if suppressed[pos.Line] {
				return
			}
			findings = append(findings, Finding{Pos: pos, Msg: fmt.Sprintf(format, args...)})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(n, "range over map: iteration order is nondeterministic and would leak into plan bytes (collect and sort, or mark %s with a reason)", suppressComment)
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pkgName.Imported().Path() {
				case "time":
					switch sel.Sel.Name {
					case "Now":
						report(n, "time.Now in a plan-producing package: wall-clock input makes plan bytes unstable")
					case "Sleep":
						report(n, "bare time.Sleep: a fixed delay in protocol code hides a missing event (wait on a wake token or register a timer via WakeAfter, or mark %s with a reason)", suppressComment)
					}
				case "runtime":
					if sel.Sel.Name == "Gosched" {
						report(n, "runtime.Gosched: yield-and-respin is busy-polling; a blocked processor must park on an event, not spin (mark %s only with a reason)", suppressComment)
					}
				case "math/rand", "math/rand/v2":
					// Package-level calls draw from the shared, implicitly
					// seeded source. Constructing an explicit seeded source
					// (rand.New, rand.NewSource, rand.NewPCG, ...) is fine,
					// and methods on such a *rand.Rand don't match here
					// (their receiver is not a package name).
					switch sel.Sel.Name {
					case "New", "NewSource", "NewPCG", "NewZipf", "NewChaCha8":
					default:
						report(n, "math/rand.%s uses the shared non-seeded source: draws are nondeterministic across runs (use rand.New(rand.NewSource(seed)))", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// suppressedLines returns the set of lines carrying a //det:ok comment.
func suppressedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, suppressComment) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// lintPackages resolves the patterns, typechecks each target package from
// source (tests excluded: only shipped code feeds plan bytes) and returns
// all findings.
func lintPackages(patterns []string) ([]Finding, error) {
	targets, err := goList(patterns...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		exports[p.ImportPath] = p.Export
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var all []Finding
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, t.Dir+string(os.PathSeparator)+name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		findings, err := lintFiles(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		all = append(all, findings...)
	}
	return all, nil
}
