package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestFixtureFindings typechecks the testdata fixture through the real
// pipeline (gc export data via go list) and pins exactly which constructs
// are flagged.
func TestFixtureFindings(t *testing.T) {
	deps, err := goList("-export", "-deps", "math/rand", "runtime", "sort", "time")
	if err != nil {
		t.Fatal(err)
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		exports[p.ImportPath] = p.Export
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "testdata/fixture.go", nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lintFiles(fset, "fixture", []*ast.File{file}, exportImporter(fset, exports))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Msg)
	}
	want := []string{"range over map", "time.Now", "math/rand.Intn", "runtime.Gosched", "time.Sleep"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		if !strings.Contains(findings[i].Msg, w) {
			t.Errorf("finding %d = %q, want mention of %q", i, findings[i].Msg, w)
		}
	}
}

// TestPlanPackagesClean is the CI gate in test form: the plan-producing
// packages and the protocol engine must lint clean.
func TestPlanPackagesClean(t *testing.T) {
	findings, err := lintPackages(defaultPackages)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
