// Package fixture exercises every rule of the nondeterminism linter; the
// test pins which lines are flagged and which are suppressed. It lives in
// testdata so the go tool never builds it.
package fixture

import (
	"math/rand"
	"runtime"
	"sort"
	"time"
)

func rangeOverMap(m map[string]int) int {
	sum := 0
	for _, v := range m { // want: flagged
		sum += v
	}
	return sum
}

func rangeOverMapSuppressed(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //det:ok collected and sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func rangeOverSlice(s []int) int {
	sum := 0
	for _, v := range s { // fine: slices iterate in order
		sum += v
	}
	return sum
}

func wallClock() int64 {
	return time.Now().UnixNano() // want: flagged
}

func sinceIsFine(t0 time.Time) time.Duration {
	return time.Since(t0) // fine: not time.Now (by this linter's rule)
}

func sharedSource() int {
	return rand.Intn(10) // want: flagged
}

func seededSource(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // fine: explicit seeded source
	return r.Intn(10)                   // fine: method on *rand.Rand
}

func spinYield(done *bool) {
	for !*done {
		runtime.Gosched() // want: flagged
	}
}

func blindDelay() {
	time.Sleep(10 * time.Millisecond) // want: flagged
}

func backoffSuppressed(d time.Duration) {
	time.Sleep(d) //det:ok test-only fault-injection backoff
}

func timerIsFine(d time.Duration) <-chan time.Time {
	return time.After(d) // fine: a registered timer, not a blind sleep
}
