// Command nondeterminism is a determinism linter for plan-producing
// packages: compiled plans are serialized with a byte-stable codec and
// addressed by a structural fingerprint (internal/plan), so any
// nondeterminism in the packages that build them — map iteration order,
// wall-clock reads, draws from the shared math/rand source — can silently
// change plan bytes between runs and defeat both the cache and the
// cross-backend equivalence suites.
//
// It flags, in the packages named on the command line (default: the three
// plan-producing packages internal/plan, internal/sched, internal/mem,
// plus the protocol engine internal/proto):
//
//   - `range` over a map value, unless the line carries a //det:ok comment
//     (for collect-then-sort and commutative-fold idioms);
//   - calls to time.Now;
//   - package-level math/rand calls (the shared source), while explicitly
//     seeded sources via rand.New(rand.NewSource(seed)) pass;
//   - calls to runtime.Gosched and bare time.Sleep — the event-driven
//     executor's liveness rules: a blocked processor parks on a wake
//     token or a registered timer (Backend.WakeAfter), never by spinning
//     through yields or sleeping a guessed duration.
//
// The implementation is standard-library only (go/ast + go/types, with gc
// export data located through `go list -export -deps`), so it runs in CI
// next to vet and staticcheck without any extra module requirement.
//
// Exit status: 0 when clean, 1 with file:line findings otherwise.
package main

import (
	"fmt"
	"os"
)

// defaultPackages are the packages whose output feeds plan bytes, plus
// the protocol engine, whose determinism the equivalence suites depend on
// and whose liveness depends on never spinning or sleeping blind.
var defaultPackages = []string{
	"repro/internal/plan",
	"repro/internal/sched",
	"repro/internal/mem",
	"repro/internal/proto",
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = defaultPackages
	}
	findings, err := lintPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nondeterminism: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nondeterminism: %d findings\n", len(findings))
		os.Exit(1)
	}
}
