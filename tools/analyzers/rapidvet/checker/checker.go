// Package checker drives the rapidvet analyzer suite: it loads packages
// (load.go), runs every applicable analyzer, applies the audited
// suppression markers, and performs the stale-suppression audit. It has
// two front ends: the standalone multichecker (Run/Main, used by
// `go run ./tools/analyzers/rapidvet ./...` and cmd/rapidvet) and a
// unitchecker-style vettool mode (vettool.go) so the same binary works
// under `go vet -vettool=`.
//
// Suppression contract: a finding is silenced by a trailing comment on
// the flagged line — //vet:ok <reason> for any analyzer, //det:ok
// <reason> for the nondeterminism analyzer (its historical marker). The
// reason is mandatory: a bare marker is itself a finding, because an
// unexplained suppression is an invariant hole nobody can audit. And
// suppressions must stay live: a marker on a line that no longer
// triggers any diagnostic is reported as stale, so fixed code sheds its
// waivers instead of accumulating them.
package checker

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/analyzers/rapidvet/analysis"
)

// Suppression markers.
const (
	vetOK = "//vet:ok"
	detOK = "//det:ok"
)

// Finding is one reported diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Msg)
}

// suppression is one marker comment found in a source file.
type suppression struct {
	pos    token.Position
	marker string // vetOK or detOK
	reason string
	used   bool
}

// appliesToAnalyzer reports whether the marker can silence the analyzer:
// //det:ok is the nondeterminism linter's historical marker and silences
// only it; //vet:ok silences any analyzer in the suite.
func (s *suppression) appliesToAnalyzer(name string) bool {
	return s.marker == vetOK || name == "nondeterminism"
}

// collectSuppressions indexes the marker comments of one file by line.
func collectSuppressions(fset *token.FileSet, file *ast.File) map[int]*suppression {
	out := make(map[int]*suppression)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			var marker string
			switch {
			case strings.HasPrefix(c.Text, vetOK):
				marker = vetOK
			case strings.HasPrefix(c.Text, detOK):
				marker = detOK
			default:
				continue
			}
			pos := fset.Position(c.Pos())
			out[pos.Line] = &suppression{
				pos:    pos,
				marker: marker,
				reason: strings.TrimSpace(strings.TrimPrefix(c.Text, marker)),
			}
		}
	}
	return out
}

// Options configures one checker run.
type Options struct {
	// Patterns are the go-list package patterns (default ./...).
	Patterns []string
	// Analyzers is the suite to run (default All).
	Analyzers []*analysis.Analyzer
	// ScopeOff disables the per-analyzer DefaultPackages restriction —
	// every analyzer runs on every loaded package. The corpus expect-fail
	// CI step uses it, since testdata fixtures live outside the scoped
	// runtime packages.
	ScopeOff bool
	// NoStaleAudit skips the stale-suppression audit. Set automatically
	// when only a subset of analyzers runs: a //det:ok line is not stale
	// just because the nondeterminism analyzer was excluded this run.
	NoStaleAudit bool
}

// Run loads the patterns and applies the suite, returning audited
// findings sorted by position.
func Run(opts Options) ([]Finding, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	if opts.Analyzers == nil {
		opts.Analyzers = All
	}
	fset, pkgs, err := Load(opts.Patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := checkPackage(fset, pkg, opts)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// checkPackage runs every applicable analyzer over one loaded package and
// folds in the suppression audit.
func checkPackage(fset *token.FileSet, pkg *Package, opts Options) ([]Finding, error) {
	if opts.Analyzers == nil {
		opts.Analyzers = All
	}
	// Index suppressions per file line.
	type fileSupp struct {
		file  *ast.File
		lines map[int]*suppression
	}
	supps := make(map[string]*fileSupp) // filename -> suppressions
	for _, f := range pkg.Files {
		supps[fset.Position(f.Pos()).Filename] = &fileSupp{file: f, lines: collectSuppressions(fset, f)}
	}

	var findings []Finding
	for _, a := range opts.Analyzers {
		if !opts.ScopeOff && !appliesTo(a.DefaultPackages, pkg.ImportPath) {
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if fs := supps[pos.Filename]; fs != nil {
				if s := fs.lines[pos.Line]; s != nil && s.appliesToAnalyzer(a.Name) {
					s.used = true
					continue
				}
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Msg: d.Message})
		}
	}

	// Audit the markers themselves: every suppression needs a reason, and
	// a suppression that silenced nothing is stale — the code it excused
	// has been fixed (or the marker landed on the wrong line) and the
	// waiver must go, or the audit trail rots.
	for _, fs := range supps {
		for _, s := range fs.lines {
			if s.reason == "" {
				findings = append(findings, Finding{
					Analyzer: "suppression",
					Pos:      s.pos,
					Msg:      fmt.Sprintf("%s without a reason: every suppression must say why the flagged pattern is safe", s.marker),
				})
			}
			if !opts.NoStaleAudit && !s.used {
				findings = append(findings, Finding{
					Analyzer: "suppression",
					Pos:      s.pos,
					Msg:      fmt.Sprintf("stale %s: no diagnostic on this line any more — delete the suppression (or re-anchor it to the line that still needs it)", s.marker),
				})
			}
		}
	}
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// selectAnalyzers filters All by a comma-separated name list.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return All, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", n, analyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Main is the shared entry point of cmd/rapidvet and
// tools/analyzers/rapidvet. Exit status: 0 clean, 1 findings (or, with
// -expect-fail, zero findings), 2 operational error.
func Main() {
	fs := flag.NewFlagSet("rapidvet", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go vet tool-ID handshake)")
	expectFail := fs.Bool("expect-fail", false, "invert the verdict: exit 0 only if the suite reports at least one finding (corpus self-test)")
	scopeOff := fs.Bool("scope", true, "apply each analyzer's default package scope (=false runs every analyzer everywhere)")
	only := fs.String("analyzers", "", "comma-separated analyzer subset (default: all; disables the stale-suppression audit)")
	list := fs.Bool("list", false, "print the analyzers and their scopes, then exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rapidvet [flags] [packages]\n\n"+
			"rapidvet statically enforces the runtime's concurrency and durability\n"+
			"invariants. Default packages: ./...\n\n")
		fs.PrintDefaults()
	}
	// `go vet -vettool` probes the tool with a bare -flags argument and
	// expects a JSON description of the flags it may forward. We expose
	// none — go vet drives rapidvet purely through .cfg files.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	fs.Parse(os.Args[1:])

	if *version != "" {
		// `go vet -vettool` probes the tool with -V=full and requires the
		// reply to end in "buildID=<id>" — the id keys go's action cache, so
		// hash the executable: a rebuilt rapidvet invalidates cached vet
		// results, an identical binary reuses them.
		name := filepath.Base(os.Args[0])
		if *version != "full" {
			fmt.Printf("%s version devel\n", name)
			return
		}
		h := sha256.New()
		exe, err := os.Executable()
		if err == nil {
			var f *os.File
			if f, err = os.Open(exe); err == nil {
				_, err = io.Copy(h, f)
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidvet: hashing executable: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
		return
	}
	if *list {
		for _, a := range All {
			scope := "all packages"
			if len(a.DefaultPackages) > 0 {
				scope = strings.Join(a.DefaultPackages, ", ")
			}
			fmt.Printf("%-18s %s\n", a.Name, scope)
		}
		return
	}

	args := fs.Args()
	// Under `go vet -vettool=rapidvet`, the go command invokes the tool
	// once per package with a single JSON config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := Run(Options{
		Patterns:     args,
		Analyzers:    analyzers,
		ScopeOff:     !*scopeOff,
		NoStaleAudit: *only != "",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if *expectFail {
		if len(findings) == 0 {
			fmt.Fprintln(os.Stderr, "rapidvet: -expect-fail but the suite found nothing — the analyzers have gone blind")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rapidvet: %d findings (expected)\n", len(findings))
		return
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rapidvet: %d findings\n", len(findings))
		os.Exit(1)
	}
}
