package checker

import (
	"repro/tools/analyzers/rapidvet/analysis"
	"repro/tools/analyzers/rapidvet/passes/errnodiscipline"
	"repro/tools/analyzers/rapidvet/passes/fsyncgate"
	"repro/tools/analyzers/rapidvet/passes/guardedby"
	"repro/tools/analyzers/rapidvet/passes/ledgerbalance"
	"repro/tools/analyzers/rapidvet/passes/nondeterminism"
	"repro/tools/analyzers/rapidvet/passes/storethenwake"
)

// All is the rapidvet suite: one analyzer per hard-won runtime invariant.
// DESIGN.md §13 maps each to the PR that established the invariant
// dynamically before it was encoded statically here.
var All = []*analysis.Analyzer{
	ledgerbalance.Analyzer,
	storethenwake.Analyzer,
	fsyncgate.Analyzer,
	guardedby.Analyzer,
	errnodiscipline.Analyzer,
	nondeterminism.Analyzer,
}
