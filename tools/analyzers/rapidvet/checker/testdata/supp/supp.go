// Fixture for the checker's suppression audit. Each function exercises
// one clause of the contract: a reasoned marker silences, a bare marker
// silences but is itself flagged, a marker on a clean line is stale, and
// //det:ok is scoped to the nondeterminism analyzer only.
package supp

import (
	"errors"
	"time"
)

var ErrGone = errors.New("gone")

// silenced: a reasoned //det:ok fully absorbs the diagnostic.
func silenced() int64 {
	return time.Now().UnixNano() //det:ok fixture exercises the suppression path
}

// bareMarker: the marker silences the diagnostic, but a waiver with no
// reason is an invariant hole nobody can audit — flagged on its own.
func bareMarker() int64 {
	return time.Now().UnixNano() //vet:ok
}

// stale: nothing on this line triggers anything; the leftover waiver
// must be reported so fixed code sheds its suppressions.
func stale() int {
	return 42 //vet:ok fixed long ago
}

// wrongMarker: //det:ok is the nondeterminism linter's marker — it does
// not silence errnodiscipline, so the sentinel comparison still fires
// and the marker itself goes stale.
func wrongMarker(err error) bool {
	return err == ErrGone //det:ok wrong marker for this analyzer
}
