package checker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package loading. The checker needs type-checked syntax for every target
// package but must work offline with nothing beyond the standard
// toolchain, so it does what the original nondeterminism linter did:
// resolve patterns and file lists with `go list -json`, obtain gc export
// data for every dependency with `go list -json -export -deps` (the build
// cache supplies the .a files; no network), then type-check each target
// from source with an importer that reads that export data.
//
// Only GoFiles are analyzed — test files are deliberately out of scope:
// the invariants rapidvet enforces are contracts of the shipped runtime,
// and tests legitimately do things the analyzers forbid (sentinel
// comparisons on crafted errors, raw fd writes to fabricate corrupt
// journals, blind sleeps in fault harnesses).

// listedPackage is the subset of `go list -json` output the checker needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
}

// goList runs `go list -json <args>` and decodes the JSON stream.
func goList(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer with gc export data located via
// `go list -export -deps`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importerFor(fset, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// importerFor adapts a lookup function to a gc-export-data importer; the
// vettool front end supplies lookups from the go command's vet config.
func importerFor(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// Package is one loaded, type-checked target.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// newTypesInfo allocates every map an analyzer may consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves patterns and returns each matched package type-checked
// from source, sharing one FileSet.
func Load(patterns []string) (*token.FileSet, []*Package, error) {
	targets, err := goList(patterns...)
	if err != nil {
		return nil, nil, err
	}
	deps, err := goList(append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		exports[p.ImportPath] = p.Export
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp, FakeImportC: true}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
		})
	}
	return fset, pkgs, nil
}

// appliesTo reports whether an analyzer scoped to paths runs on the
// package: exact import-path match or suffix match on a path-segment
// boundary, so "internal/exec" covers both "repro/internal/exec" and a
// fork's "example.com/repro/internal/exec".
func appliesTo(paths []string, importPath string) bool {
	if len(paths) == 0 {
		return true
	}
	for _, p := range paths {
		if importPath == p || strings.HasSuffix(importPath, "/"+p) {
			return true
		}
	}
	return false
}
