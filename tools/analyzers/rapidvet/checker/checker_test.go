package checker_test

import (
	"strings"
	"testing"

	"repro/tools/analyzers/rapidvet/checker"
)

// findingAt reports whether some finding from the named analyzer whose
// message contains msgSub landed on the given fixture line.
func findingAt(fs []checker.Finding, analyzer, msgSub string, line int) bool {
	for _, f := range fs {
		if f.Analyzer == analyzer && f.Pos.Line == line && strings.Contains(f.Msg, msgSub) {
			return true
		}
	}
	return false
}

// Fixture line numbers (testdata/supp/supp.go).
const (
	lineSilenced    = 16
	lineBareMarker  = 22
	lineStale       = 28
	lineWrongMarker = 35
)

func runFixture(t *testing.T, opts checker.Options) []checker.Finding {
	t.Helper()
	opts.Patterns = []string{"./testdata/supp"}
	opts.ScopeOff = true
	fs, err := checker.Run(opts)
	if err != nil {
		t.Fatalf("checker.Run: %v", err)
	}
	return fs
}

func TestSuppressionAudit(t *testing.T) {
	fs := runFixture(t, checker.Options{})

	if findingAt(fs, "nondeterminism", "time.Now", lineSilenced) {
		t.Errorf("reasoned //det:ok did not silence the diagnostic on line %d:\n%v", lineSilenced, fs)
	}
	if findingAt(fs, "nondeterminism", "time.Now", lineBareMarker) {
		t.Errorf("bare //vet:ok should still silence the diagnostic on line %d (the missing reason is its own finding):\n%v", lineBareMarker, fs)
	}
	if !findingAt(fs, "suppression", "without a reason", lineBareMarker) {
		t.Errorf("bare //vet:ok on line %d was not flagged as reason-less:\n%v", lineBareMarker, fs)
	}
	if !findingAt(fs, "suppression", "stale", lineStale) {
		t.Errorf("unused //vet:ok on line %d was not flagged as stale:\n%v", lineStale, fs)
	}
	if !findingAt(fs, "errnodiscipline", "use errors.Is", lineWrongMarker) {
		t.Errorf("//det:ok on line %d must not silence errnodiscipline (it is the nondeterminism marker):\n%v", lineWrongMarker, fs)
	}
	if !findingAt(fs, "suppression", "stale", lineWrongMarker) {
		t.Errorf("the //det:ok on line %d silenced nothing and should be stale:\n%v", lineWrongMarker, fs)
	}
}

func TestNoStaleAudit(t *testing.T) {
	fs := runFixture(t, checker.Options{NoStaleAudit: true})

	for _, f := range fs {
		if f.Analyzer == "suppression" && strings.Contains(f.Msg, "stale") {
			t.Errorf("stale finding reported despite NoStaleAudit: %v", f)
		}
	}
	// The reason audit is unconditional: an unexplained waiver is a hole
	// in the invariant surface no matter which analyzers ran.
	if !findingAt(fs, "suppression", "without a reason", lineBareMarker) {
		t.Errorf("reason-less //vet:ok on line %d must be flagged even with the stale audit off:\n%v", lineBareMarker, fs)
	}
}
