package checker

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vettool is the `go vet -vettool=` protocol: the go command invokes the
// tool once per compile unit with a single JSON config-file argument
// (the same contract x/tools' unitchecker implements). The config names
// the unit's Go files and maps every import to the export data the
// compiler already produced, so no `go list` round-trips are needed —
// the go command is the package loader.
//
// Protocol obligations honoured here: the -V=full handshake (Main), the
// VetxOutput facts file (written empty — this suite is factless, every
// analyzer is package-local by construction), VetxOnly units (depended-on
// packages analysed only for facts: nothing to do), and
// SucceedOnTypecheckFailure (vet must not re-report compiler errors).
// Test variants (ImportPath "pkg.test" or "pkg [pkg.test]") are skipped:
// rapidvet analyses shipped code only, by design — tests legitimately
// fabricate the very shapes the analyzers forbid.

// vetConfig is the subset of the go command's vet config the suite needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool runs the suite over one compile unit; the return value is the
// process exit code (0 clean, 1 findings, 2 operational error).
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rapidvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts file to exist afterwards.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "rapidvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly || isTestVariant(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &Package{ImportPath: cfg.ImportPath, Dir: cfg.Dir}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapidvet: %v\n", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg.Info = newTypesInfo()
	conf := types.Config{Importer: importerFor(fset, lookup), FakeImportC: true}
	tpkg, err := conf.Check(cfg.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rapidvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg.Pkg = tpkg

	findings, err := checkPackage(fset, pkg, Options{Analyzers: All})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rapidvet: %v\n", err)
		return 2
	}
	sortFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func isTestVariant(importPath string) bool {
	return strings.HasSuffix(importPath, ".test") || strings.Contains(importPath, " [")
}
