// Corpus for the nondeterminism analyzer: every construct that makes
// plan bytes depend on runtime accidents, next to its deterministic
// replacement. No //det:ok here — the corpus exercises the raw analyzer;
// suppression plumbing is the checker's own test.
package a

import (
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// mapRange leaks iteration order into whatever it builds.
func mapRange(weights map[string]int) int {
	total := 0
	for _, w := range weights { // want "range over map"
		total += w
	}
	return total
}

// sortedRange is the deterministic form: collect keys, sort, iterate.
func sortedRange(weights map[string]int) []string {
	keys := make([]string, 0, len(weights))
	for k := range weights { // want "range over map"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// wallClock stamps plan bytes with the time of day.
func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// bareSleep papers over a missing event with a guessed delay.
func bareSleep() {
	time.Sleep(10 * time.Millisecond) // want "bare time.Sleep"
}

// spin busy-polls through the scheduler instead of parking.
func spin(done *bool) {
	for !*done {
		runtime.Gosched() // want "runtime.Gosched"
	}
}

// sharedSource draws from the implicitly seeded package-level source.
func sharedSource() int {
	return rand.Intn(100) // want "shared non-seeded source"
}

// seededSource is the reproducible form: an explicit seed, draws from
// the owned *rand.Rand (method calls don't match the package pattern).
func seededSource(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// sliceRange: ranging a slice is ordered — nothing to flag.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
