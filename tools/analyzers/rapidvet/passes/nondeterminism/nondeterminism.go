// Package nondeterminism flags constructs that make plan bytes or
// protocol behavior depend on runtime accidents. Compiled plans are
// serialized by a byte-stable codec and addressed by a structural
// fingerprint (internal/plan), so any nondeterminism in the packages
// that build them — map iteration order, wall-clock reads, draws from
// the shared math/rand source — silently changes plan bytes between runs
// and defeats both the cache and the cross-backend equivalence suites.
// The protocol engine is additionally held to the event-driven liveness
// rules of PR 7: a blocked processor parks on a wake token or a
// registered timer (Backend.WakeAfter); it never spins through
// runtime.Gosched or sleeps a guessed duration.
//
// This is the original standalone tools/analyzers/nondeterminism linter,
// migrated into the rapidvet suite; the //det:ok marker it introduced is
// still honored (the checker enforces that every suppression carries a
// reason and is still live).
package nondeterminism

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/rapidvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "flag map ranges, wall-clock reads, shared-source rand draws, Gosched spins and bare sleeps " +
		"in the plan-producing packages and the protocol engine (plan bytes must be a pure function of the input; " +
		"blocked processors must park on events)",
	DefaultPackages: []string{
		"internal/plan",
		"internal/sched",
		"internal/sched/exact",
		"internal/sched/bakeoff",
		"internal/mem",
		"internal/proto",
	},
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.ReportRangef(n, "range over map: iteration order is nondeterministic and would leak into plan bytes (collect and sort, or mark //det:ok with a reason)")
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pkgName.Imported().Path() {
				case "time":
					switch sel.Sel.Name {
					case "Now":
						pass.ReportRangef(n, "time.Now in a plan-producing package: wall-clock input makes plan bytes unstable")
					case "Sleep":
						pass.ReportRangef(n, "bare time.Sleep: a fixed delay in protocol code hides a missing event (wait on a wake token or register a timer via WakeAfter, or mark //det:ok with a reason)")
					}
				case "runtime":
					if sel.Sel.Name == "Gosched" {
						pass.ReportRangef(n, "runtime.Gosched: yield-and-respin is busy-polling; a blocked processor must park on an event, not spin (mark //det:ok only with a reason)")
					}
				case "math/rand", "math/rand/v2":
					// Package-level calls draw from the shared, implicitly
					// seeded source. Constructing an explicit seeded source
					// (rand.New, rand.NewSource, rand.NewPCG, ...) is fine,
					// and methods on such a *rand.Rand don't match here
					// (their receiver is not a package name).
					switch sel.Sel.Name {
					case "New", "NewSource", "NewPCG", "NewZipf", "NewChaCha8":
					default:
						pass.ReportRangef(n, "math/rand.%s uses the shared non-seeded source: draws are nondeterministic across runs (use rand.New(rand.NewSource(seed)))", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
