package nondeterminism_test

import (
	"testing"

	"repro/tools/analyzers/rapidvet/analysis/analysistest"
	"repro/tools/analyzers/rapidvet/passes/nondeterminism"
)

func TestCorpus(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", nondeterminism.Analyzer)
}
