// Package guardedby checks `// guarded-by: <mutex>` field annotations:
// every access to an annotated struct field must happen while the named
// sibling mutex is held. The runtime's hot structs — the admission
// ledger, the weighted-fair queue, the health state machine, the journal
// — all follow the same convention: a single sync.Mutex guards a cluster
// of fields, public methods take the lock, and internal helpers that
// expect the lock already held carry a *Locked name suffix. This
// analyzer makes the convention checkable: annotate the fields once and
// every new call path that forgets the lock (or forgets the suffix that
// documents the caller's obligation) is flagged.
//
// Rules:
//
//   - a field whose declaration carries a trailing `// guarded-by: mu`
//     comment may be read or written only when "<base>.mu" is held,
//     where <base> is the expression the field is selected from
//     (s.inUse needs s.mu; s.adm.inUse needs s.adm.mu);
//   - X.Lock()/X.RLock() adds X to the held set; X.Unlock()/X.RUnlock()
//     removes it; defer X.Unlock() keeps it held to function end;
//   - a method whose name ends in Locked is assumed to be called with
//     every guard of its receiver's annotated fields held (the suffix is
//     trusted, not verified — it documents the caller's obligation);
//   - locals initialised in-function from a composite literal or new()
//     are fresh: nothing else can see them yet, so their fields are
//     accessible unlocked (constructors);
//   - a `go func(){...}` body starts with nothing held — the goroutine
//     outlives the spawning critical section. Other function literals
//     inherit the held set at their definition point (defer-unlock
//     epilogues run where they are written).
//
// Held-ness is tracked per branch: a lock taken inside an if-branch is
// not considered held after the branch joins.
package guardedby

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/rapidvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "enforce `// guarded-by: mu` field annotations: annotated fields may only be touched with the " +
		"named mutex held, reached via a locking public method or a *Locked-suffixed helper",
	DefaultPackages: []string{
		"internal/rapidd",
		"internal/journal",
		"internal/exec",
	},
	Run: run,
}

const marker = "guarded-by:"

// annotations maps the *types.Var of each annotated field to its guard
// mutex field name.
type annotations map[*types.Var]string

func run(pass *analysis.Pass) (any, error) {
	ann := collectAnnotations(pass)
	if len(ann) == 0 {
		return nil, nil
	}
	// Guard/field shapes per struct type name, for seeding *Locked methods.
	shapes := collectShapes(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, ann: ann}
			st := newState()
			seedReceiverGuards(fn, shapes, st)
			w.walkStmts(fn.Body.List, st)
		}
	}
	return nil, nil
}

// collectAnnotations finds `// guarded-by: mu` trailing comments on
// struct fields and resolves each to its field object.
func collectAnnotations(pass *analysis.Pass) annotations {
	ann := make(annotations)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard, ok := fieldGuard(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						ann[v] = guard
					}
				}
			}
			return true
		})
	}
	return ann
}

// typeShape is what *Locked seeding needs to know about a struct: the
// guard names of its own annotated fields, and its struct-typed fields
// (so a Locked method on the outer type holds the inner guards too:
// Server.setHealthLocked is entered with s.health.mu held).
type typeShape struct {
	guards []string
	fields map[string]string // field name -> field type name
}

// collectShapes maps struct type name -> its guard/field shape.
func collectShapes(pass *analysis.Pass) map[string]*typeShape {
	out := make(map[string]*typeShape)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			shape := &typeShape{fields: map[string]string{}}
			seen := map[string]bool{}
			for _, field := range st.Fields.List {
				if guard, ok := fieldGuard(field); ok && !seen[guard] {
					seen[guard] = true
					shape.guards = append(shape.guards, guard)
				}
				if tn := receiverTypeName(field.Type); tn != "" {
					for _, name := range field.Names {
						shape.fields[name.Name] = tn
					}
				}
			}
			out[ts.Name.Name] = shape
			return true
		})
	}
	return out
}

// fieldGuard extracts the guard name from a field's trailing comment.
// The marker may follow descriptive text: `// reserved tasks; guarded-by: mu`.
func fieldGuard(field *ast.Field) (string, bool) {
	if field.Comment == nil {
		return "", false
	}
	for _, c := range field.Comment.List {
		_, rest, ok := strings.Cut(c.Text, marker)
		if !ok {
			continue
		}
		guard := strings.TrimSpace(rest)
		if i := strings.IndexAny(guard, " \t;,"); i >= 0 {
			guard = guard[:i]
		}
		if guard != "" {
			return guard, true
		}
	}
	return "", false
}

// seedReceiverGuards pre-holds guards for *Locked methods: the
// receiver's own guards, plus (one level deep) the guards of its
// struct-typed fields, so a Locked method on an outer type is entered
// with the inner mutex held too (Server.setHealthLocked → s.health.mu).
func seedReceiverGuards(fn *ast.FuncDecl, shapes map[string]*typeShape, st *state) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	if !strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	recvName := fn.Recv.List[0].Names[0].Name
	shape := shapes[receiverTypeName(fn.Recv.List[0].Type)]
	if shape == nil {
		return
	}
	for _, guard := range shape.guards {
		st.held[recvName+"."+guard] = true
	}
	for fieldName, fieldType := range shape.fields {
		if inner := shapes[fieldType]; inner != nil {
			for _, guard := range inner.guards {
				st.held[recvName+"."+fieldName+"."+guard] = true
			}
		}
	}
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	}
	return ""
}

// state is the per-path lock and freshness knowledge.
type state struct {
	held  map[string]bool // rendered mutex expressions currently held
	fresh map[string]bool // locals whose value cannot be shared yet
}

func newState() *state {
	return &state{held: map[string]bool{}, fresh: map[string]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for k := range s.held {
		c.held[k] = true
	}
	for k := range s.fresh {
		c.fresh[k] = true
	}
	return c
}

type walker struct {
	pass *analysis.Pass
	ann  annotations
}

// walkStmts tracks held-ness through one statement list. Branches get
// clones, so their lock changes do not leak past the join.
func (w *walker) walkStmts(stmts []ast.Stmt, st *state) {
	for _, s := range stmts {
		w.walkStmt(s, st)
	}
}

func (w *walker) walkStmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mutex, op, ok := lockOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				st.held[mutex] = true
			case "Unlock", "RUnlock":
				delete(st.held, mutex)
			}
			return
		}
		w.checkExpr(s.X, st)
	case *ast.DeferStmt:
		// defer X.Unlock() pins the lock to function end: no removal.
		if _, op, ok := lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		w.checkExpr(s.Call, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, st)
		}
		for i, lhs := range s.Lhs {
			if s.Tok == token.DEFINE && i < len(s.Rhs) && isFreshValue(s.Rhs[i]) {
				if id, ok := lhs.(*ast.Ident); ok {
					st.fresh[id.Name] = true
					continue
				}
			}
			w.checkExpr(lhs, st)
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.checkExpr(s.Cond, st)
		then := st.clone()
		w.walkStmts(s.Body.List, then)
		outs := make([]*state, 0, 2)
		if !terminates(s.Body.List) {
			outs = append(outs, then)
		}
		if s.Else != nil {
			els := st.clone()
			w.walkStmt(s.Else, els)
			if !elseTerminates(s.Else) {
				outs = append(outs, els)
			}
		} else {
			// No else: falling past the if keeps the pre-branch state.
			outs = append(outs, st.clone())
		}
		// Join: after the if, only locks held on EVERY surviving path are
		// held; same for single-owner freshness. If every path terminates
		// the code after the if is unreachable and the state is moot.
		if len(outs) > 0 {
			meetInto(st, outs)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, st)
		}
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, st)
		w.walkStmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e, st)
				}
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := st.clone()
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, branch)
				}
				w.walkStmts(cc.Body, branch)
			}
		}
	case *ast.GoStmt:
		// A fresh value mentioned by a goroutine escapes: from here on it
		// is shared and its guarded fields need the lock again.
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				delete(st.fresh, id.Name)
			}
			return true
		})
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// The goroutine outlives this critical section: nothing held.
			w.walkStmts(lit.Body.List, newState())
		} else {
			w.checkExpr(s.Call.Fun, st)
		}
	case *ast.SendStmt:
		w.checkExpr(s.Chan, st)
		w.checkExpr(s.Value, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, st)
					}
				}
			}
		}
	}
}

// checkExpr flags guarded-field selections made without the guard held.
// Function literals inside expressions inherit the current held set
// (they execute where they are written or as defer epilogues).
func (w *walker) checkExpr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, st.clone())
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := w.pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, ok := w.ann[field]
		if !ok {
			return true
		}
		base := render(sel.X)
		if st.fresh[rootIdent(sel.X)] {
			return true // value constructed in this function; not shared yet
		}
		if !st.held[base+"."+guard] {
			w.pass.Reportf(sel.Pos(), "%s.%s is guarded-by %s but %s.%s is not held here: take the lock, or reach this through a *Locked helper whose name carries the obligation", base, field.Name(), guard, base, guard)
		}
		return true
	})
}

// terminates reports whether control cannot fall off the end of the
// statement list: the last statement returns, panics, exits, or jumps.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			return fn.Name == "panic"
		case *ast.SelectorExpr:
			return render(fn) == "os.Exit"
		}
	}
	return false
}

func elseTerminates(s ast.Stmt) bool {
	if blk, ok := s.(*ast.BlockStmt); ok {
		return terminates(blk.List)
	}
	// else-if chains: assume fallthrough is possible.
	return false
}

// meetInto replaces st's held and fresh sets with the intersection of
// the surviving branch states: only facts true on every path remain.
func meetInto(st *state, outs []*state) {
	st.held = intersect(outs, func(s *state) map[string]bool { return s.held })
	st.fresh = intersect(outs, func(s *state) map[string]bool { return s.fresh })
}

func intersect(outs []*state, pick func(*state) map[string]bool) map[string]bool {
	res := make(map[string]bool)
	for k := range pick(outs[0]) {
		all := true
		for _, o := range outs[1:] {
			if !pick(o)[k] {
				all = false
				break
			}
		}
		if all {
			res[k] = true
		}
	}
	return res
}

// lockOp matches X.Lock/RLock/Unlock/RUnlock() and renders X.
func lockOp(e ast.Expr) (mutex, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return render(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// isFreshValue reports whether the expression denotes a value nothing
// else can reference yet.
func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// render prints an expression compactly for held-set keys.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
