package guardedby_test

import (
	"testing"

	"repro/tools/analyzers/rapidvet/analysis/analysistest"
	"repro/tools/analyzers/rapidvet/passes/guardedby"
)

func TestCorpus(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", guardedby.Analyzer)
}
