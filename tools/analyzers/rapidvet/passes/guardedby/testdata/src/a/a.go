// Corpus for the guardedby analyzer. A miniature of the rapidd server:
// annotated fields, *Locked helpers, a one-level-deep guarded sub-struct
// (server.health), fresh-constructor and goroutine-escape shapes.
package a

import "sync"

type ledger struct {
	mu    sync.Mutex
	inUse int64 // guarded-by: mu
	queue []int // guarded-by: mu
	avail int64 // immutable after construction
}

// pumpLocked is the blessed helper: callers hold l.mu.
func (l *ledger) pumpLocked() {
	for len(l.queue) > 0 {
		l.queue = l.queue[1:]
		l.inUse++
	}
}

// unlockedTouch mutates a guarded field with no lock at all.
func unlockedTouch(l *ledger) {
	l.inUse++ // want "guarded-by"
}

// lockedTouch is the corrected form.
func lockedTouch(l *ledger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inUse++
	l.pumpLocked()
}

// unlockTooEarly releases the lock and keeps going: the tail access
// races with every other holder.
func unlockTooEarly(l *ledger) {
	l.mu.Lock()
	l.inUse++
	l.mu.Unlock()
	l.queue = nil // want "guarded-by"
}

// branchJoin: one arm unlocks, so after the join the lock may or may
// not be held — the analyzer must assume the worst.
func branchJoin(l *ledger, bail bool) {
	l.mu.Lock()
	if bail {
		l.mu.Unlock()
	} else {
		l.inUse++
	}
	l.queue = append(l.queue, 1) // want "guarded-by" "guarded-by"
}

// freshConstructor: a value no other goroutine can see yet needs no lock.
func freshConstructor() *ledger {
	l := &ledger{avail: 64}
	l.inUse = 0
	l.queue = make([]int, 0, 8)
	return l
}

// goroutineEscape: the moment the fresh value is handed to a goroutine,
// the single-owner exemption ends.
func goroutineEscape() *ledger {
	l := &ledger{avail: 64}
	l.inUse = 0 // still fresh: fine
	go func() {
		l.mu.Lock()
		l.inUse++
		l.mu.Unlock()
	}()
	l.queue = nil // want "guarded-by"
	return l
}

// goroutineBody: a go-closure starts with an empty held set even if the
// spawner holds the lock.
func goroutineBody(l *ledger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	go func() {
		l.inUse++ // want "guarded-by"
	}()
	l.inUse++
}

// health mirrors rapidd's degraded-mode plane: guards one level down.
type health struct {
	mu    sync.Mutex
	state int    // guarded-by: mu
	cause string // guarded-by: mu
}

type server struct {
	health health
}

// setHealthLocked holds s.health.mu by contract, so the one-level-deep
// accesses inside are blessed.
func (s *server) setHealthLocked(st int, cause string) {
	s.health.state = st
	s.health.cause = cause
}

// setHealthUnlocked reaches the same fields with no contract and no lock.
func setHealthUnlocked(s *server, st int) {
	s.health.state = st // want "guarded-by"
}

// setHealth is the corrected caller shape.
func setHealth(s *server, st int, cause string) {
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	s.setHealthLocked(st, cause)
}
