package errnodiscipline_test

import (
	"testing"

	"repro/tools/analyzers/rapidvet/analysis/analysistest"
	"repro/tools/analyzers/rapidvet/passes/errnodiscipline"
)

func TestCorpus(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", errnodiscipline.Analyzer)
}
