// Corpus for the errnodiscipline analyzer: == / switch comparisons
// against error sentinels break the moment a layer wraps the error;
// errors.Is is the only comparison that survives fmt.Errorf("%w").
package a

import (
	"errors"
	"io"
)

var ErrOverBudget = errors.New("admission: over budget")
var ErrPoisoned = errors.New("journal: poisoned")

type errno int

func (e errno) Error() string { return "errno" }

const EAGAIN errno = 11

func do() error { return nil }

// badEq compares with ==: a wrapped ErrOverBudget sails past it.
func badEq() bool {
	err := do()
	return err == ErrOverBudget // want "use errors.Is"
}

// badNeq is the negated form.
func badNeq() bool {
	err := do()
	return err != ErrPoisoned // want "use errors.Is"
}

// badReversed puts the sentinel on the left.
func badReversed(err error) bool {
	return ErrOverBudget == err // want "use errors.Is"
}

// badErrno compares an error against an errno-style constant.
func badErrno(err error) bool {
	return err == EAGAIN // want "use errors.Is"
}

// badSwitch dispatches on sentinel identity in case clauses.
func badSwitch(err error) int {
	switch err {
	case ErrOverBudget: // want "use errors.Is"
		return 1
	case ErrPoisoned: // want "use errors.Is"
		return 2
	}
	return 0
}

// goodIs is the corrected form: survives wrapping.
func goodIs(err error) bool {
	return errors.Is(err, ErrOverBudget)
}

// goodNil: nil checks are not sentinel comparisons.
func goodNil(err error) bool {
	return err != nil
}

// goodEOF: io.EOF is an allowlisted protocol value — the io.Reader
// contract requires returning it unwrapped, so == is the idiom.
func goodEOF(err error) bool {
	return err == io.EOF
}

// goodLocal: comparing two locals is not a sentinel comparison.
func goodLocal(a, b error) bool {
	return a == b
}
