// Package errnodiscipline enforces wrapped-error hygiene. The runtime
// deliberately wraps its sentinel errors — journal.Append returns
// fmt.Errorf("%w: ...", ErrDegraded), the iofault seam wraps injected
// errnos in *os.PathError precisely so errors.Is can see them — which
// means a direct == or switch comparison against a sentinel is a latent
// bug: it compiles, passes the happy-path test, and silently stops
// matching the moment any layer adds context. PR 8's health plane works
// only because every ErrDegraded check goes through errors.Is; this
// analyzer makes that discipline structural.
//
// Flagged:
//
//   - err == ErrSentinel / err != ErrSentinel where ErrSentinel is a
//     package-level error variable (the sentinel may arrive wrapped);
//   - err == syscall.ENOSPC and friends — an errno boxed in an error
//     interface is almost always nested inside a *os.PathError;
//   - switch err { case ErrSentinel: ... } — the same comparison spelled
//     as a switch.
//
// Allowed: comparisons with nil, io.EOF and io.ErrUnexpectedEOF (the
// io.Reader contract requires those to be returned unwrapped), and
// comparing two plain variables (e.g. err == prevErr identity checks).
package errnodiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/analyzers/rapidvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errnodiscipline",
	Doc: "flag ==/!=/switch comparisons of error values against sentinel errors and errnos that the " +
		"codebase wraps; require errors.Is so context-adding layers cannot break the match",
	Run: run,
}

// allowedSentinels are returned unwrapped by contract and are compared
// with == throughout the standard library itself.
var allowedSentinels = map[string]bool{
	"io.EOF":               true,
	"io.ErrUnexpectedEOF":  true,
	"context.Canceled":     false, // context.Cause wraps; errors.Is is still right
	"sql.ErrNoRows":        true,
	"http.ErrServerClosed": true, // Serve returns it unwrapped by contract
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				checkComparison(pass, n.X, n.Y, n.Pos())
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(info, n.Tag) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelName(info, e); ok {
							pass.Reportf(e.Pos(), "switch on an error value against sentinel %s: the codebase wraps its sentinels, so a case match breaks as soon as context is added — use errors.Is in an if/else chain", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkComparison flags err ==/!= sentinel in either operand order.
func checkComparison(pass *analysis.Pass, x, y ast.Expr, pos token.Pos) {
	info := pass.TypesInfo
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		errSide, sentSide := pair[0], pair[1]
		if !isErrorExpr(info, errSide) {
			continue
		}
		if name, ok := sentinelName(info, sentSide); ok {
			pass.Reportf(pos, "comparison of an error value against sentinel %s: the codebase wraps its sentinels (journal.ErrDegraded, iofault's *os.PathError errnos), so == stops matching once any layer adds context — use errors.Is", name)
			return
		}
	}
}

// isErrorExpr reports whether e's static type is the error interface.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// sentinelName reports whether e denotes a sentinel worth flagging: a
// package-level variable of type error (ErrFoo), or a constant/variable
// of a concrete type implementing error (syscall.Errno values). Returns
// a printable name.
func sentinelName(info *types.Info, e ast.Expr) (string, bool) {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return "", false
	}
	if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false // not package-level: a local error variable is an identity check, not a sentinel
	}
	name := obj.Name()
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	if allowedSentinels[name] {
		return "", false
	}
	switch obj := obj.(type) {
	case *types.Var:
		if isErrorType(obj.Type()) {
			return name, true
		}
	case *types.Const:
		if implementsError(obj.Type()) {
			return name, true // e.g. syscall.ENOSPC: an errno boxed into err arrives wrapped in *os.PathError
		}
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// implementsError reports whether concrete type t has an Error() string
// method (so a value of it can be boxed into an error interface).
func implementsError(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "Error" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if basic, ok := sig.Results().At(0).Type().(*types.Basic); ok && basic.Kind() == types.String {
			return true
		}
	}
	return false
}
