// Package ledgerbalance checks that every admission-ledger acquisition
// and every queue-slot reservation is discharged on every exit path.
// The daemon's capacity accounting is a two-sided ledger: units taken
// with admission.acquire/acquireCtx must come back through release, or
// the machine budget leaks until restart and admission eventually wedges
// shut; slots taken with wfqueue.reserve participate in the two-phase
// reserve → journal-append → commit/abort protocol, and a reservation
// that is neither committed nor aborted permanently shrinks the queue
// (PR-6's shedding math assumes reserved slots always resolve).
//
// Obligation sites are matched by the ledger vocabulary — a call to a
// method named acquire/acquireCtx opens a release obligation on its
// receiver expression; reserve opens a commit-or-abort obligation — so
// corpora can define local lookalike types. The walk is path-sensitive
// over the function body:
//
//   - `if err != nil { ... }` after `err := x.acquireCtx(...)` cancels
//     the obligation inside the failure branch (a failed acquire took
//     nothing);
//   - `if !ok { ... }` after `slot, ok := q.reserve(...)` likewise;
//   - release/commit/abort on the same receiver — called directly or
//     deferred — discharges from that point on (defer also covers
//     panics);
//   - a return, an explicit panic, or falling off the end of the
//     function with an open obligation is a leak, reported at the
//     acquisition site.
//
// The implementation types themselves (receiver types admission and
// wfqueue) are skipped: the ledger's internals legitimately compose
// their own primitives.
package ledgerbalance

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"

	"repro/tools/analyzers/rapidvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ledgerbalance",
	Doc: "every admission acquire must be released and every queue reserve committed or aborted on every " +
		"exit path (including early returns and panics); an unbalanced ledger leaks capacity until restart",
	DefaultPackages: []string{
		"internal/rapidd",
	},
	Run: run,
}

// implReceivers are the ledger implementations; their own methods
// compose acquire/release internals and are not call sites.
var implReceivers = map[string]bool{"admission": true, "wfqueue": true}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv != nil && len(fn.Recv.List) > 0 && implReceivers[receiverTypeName(fn.Recv.List[0].Type)] {
				continue
			}
			w := &walker{pass: pass, leakAt: map[token.Pos]token.Pos{}}
			w.walkFunc(fn.Body)
			w.report()
		}
	}
	return nil, nil
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

// obligation is one open ledger debt.
type obligation struct {
	key    string // rendered receiver, e.g. "s.adm", "s.queue"
	kind   string // "acquire" (needs release) or "reserve" (needs commit/abort)
	pos    token.Pos
	errVar string // error result: its != nil branch cancels
	okVar  string // bool result: its !ok branch cancels
}

// state maps receiver key -> open obligation for one path.
type state map[string]*obligation

func (st state) clone() state {
	c := make(state, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// union keeps an obligation open if it is open on any continuing path.
func union(a, b state) state {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// replace overwrites st's contents with src (st is shared by reference).
func replace(st, src state) {
	for k := range st {
		delete(st, k)
	}
	for k, v := range src {
		st[k] = v
	}
}

type walker struct {
	pass   *analysis.Pass
	leakAt map[token.Pos]token.Pos // acquisition pos -> first leaking exit
	obs    []*obligation           // every obligation seen, for ordered reporting
}

// walkFunc analyses one function body; nested function literals are
// independent scopes (their obligations balance internally).
func (w *walker) walkFunc(body *ast.BlockStmt) {
	st := make(state)
	if terminated := w.walkStmts(body.List, st); !terminated {
		w.exit(st, body.Rbrace)
	}
}

func (w *walker) report() {
	sort.Slice(w.obs, func(i, j int) bool { return w.obs[i].pos < w.obs[j].pos })
	for _, o := range w.obs {
		leak, ok := w.leakAt[o.pos]
		if !ok {
			continue
		}
		where := w.pass.Fset.Position(leak)
		switch o.kind {
		case "acquire":
			w.pass.Reportf(o.pos, "admission units acquired from %s are not released on every path (exit at line %d leaks them): call %s.release on each exit, or defer it — leaked units shrink the machine budget until restart", o.key, where.Line, o.key)
		case "reserve":
			w.pass.Reportf(o.pos, "queue slot reserved from %s is neither committed nor aborted on every path (exit at line %d leaks it): the two-phase reserve→journal→commit protocol requires %s.commit on success and %s.abort on failure", o.key, where.Line, o.key, o.key)
		}
	}
}

// exit records every open obligation as leaking at pos.
func (w *walker) exit(st state, pos token.Pos) {
	for _, o := range st {
		if _, seen := w.leakAt[o.pos]; !seen {
			w.leakAt[o.pos] = pos
		}
	}
}

// walkStmts returns true if the statement list terminates the function
// on every path through it.
func (w *walker) walkStmts(stmts []ast.Stmt, st state) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, st)
	case *ast.ExprStmt:
		if isPanic(s.X) {
			w.exit(st, s.Pos())
			return true
		}
		w.handleCallExpr(s.X, st)
	case *ast.DeferStmt:
		w.discharge(s.Call, st)
		w.scanFuncLits(s.Call)
	case *ast.ReturnStmt:
		w.scanFuncLits(s)
		w.exit(st, s.Pos())
		return true
	case *ast.IfStmt:
		return w.walkIf(s, st)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.ForStmt, *ast.RangeStmt:
		var body *ast.BlockStmt
		if f, ok := s.(*ast.ForStmt); ok {
			if f.Init != nil {
				w.walkStmt(f.Init, st)
			}
			body = f.Body
		} else {
			body = s.(*ast.RangeStmt).Body
		}
		after := st.clone()
		w.walkStmts(body.List, after)
		// The loop may run zero or more times: keep an obligation open if
		// it is open on either shape.
		replace(st, union(st, after))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		return w.walkClauses(caseBodies(s.Body), hasDefaultCase(s.Body), st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		return w.walkClauses(caseBodies(s.Body), hasDefaultCase(s.Body), st)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// A select always takes some clause, so it is exhaustive.
		return w.walkClauses(bodies, true, st)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkFunc(lit.Body)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// walkIf handles guard-branch cancellation and branch-state merging.
func (w *walker) walkIf(s *ast.IfStmt, st state) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	thenSt, elseSt := st.clone(), st.clone()
	w.applyCondCancellation(s.Cond, thenSt, elseSt)

	thenTerm := w.walkStmts(s.Body.List, thenSt)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(s.Else, elseSt)
	}
	switch {
	case thenTerm && s.Else != nil && elseTerm:
		return true
	case thenTerm:
		replace(st, elseSt)
	case s.Else != nil && elseTerm:
		replace(st, thenSt)
	default:
		replace(st, union(thenSt, elseSt))
	}
	return false
}

// walkClauses merges switch/select clause states.
func (w *walker) walkClauses(bodies [][]ast.Stmt, exhaustive bool, st state) bool {
	if len(bodies) == 0 {
		return false
	}
	allTerm := true
	var continuing []state
	for _, body := range bodies {
		branch := st.clone()
		if w.walkStmts(body, branch) {
			continue
		}
		allTerm = false
		continuing = append(continuing, branch)
	}
	if allTerm && exhaustive {
		return true
	}
	merged := st.clone() // the not-taken shape, for non-exhaustive switches
	if exhaustive {
		merged = make(state)
	}
	for _, c := range continuing {
		merged = union(merged, c)
	}
	replace(st, merged)
	return false
}

// applyCondCancellation removes obligations whose failure guard the
// condition tests: inside `if err != nil` the acquire failed and took
// nothing; inside `if !ok` the reserve failed and holds nothing.
func (w *walker) applyCondCancellation(cond ast.Expr, thenSt, elseSt state) {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		id, ok := c.X.(*ast.Ident)
		if !ok || !isNilIdent(c.Y) {
			return
		}
		switch c.Op {
		case token.NEQ: // err != nil: failure in then-branch
			cancelVar(thenSt, id.Name, "err")
		case token.EQL: // err == nil: failure in else-branch
			cancelVar(elseSt, id.Name, "err")
		}
	case *ast.UnaryExpr: // !ok: failure in then-branch
		if c.Op == token.NOT {
			if id, ok := c.X.(*ast.Ident); ok {
				cancelVar(thenSt, id.Name, "ok")
			}
		}
	case *ast.Ident: // if ok: failure in else-branch
		cancelVar(elseSt, c.Name, "ok")
	}
}

// unbindVar detaches a reassigned guard variable from open obligations.
// Obligation structs are shared across branch clones, so the map entry
// is replaced with an unbound copy instead of being mutated in place.
func unbindVar(st state, name string) {
	if name == "_" || name == "" {
		return
	}
	for k, o := range st {
		if o.errVar == name || o.okVar == name {
			c := *o
			if c.errVar == name {
				c.errVar = ""
			}
			if c.okVar == name {
				c.okVar = ""
			}
			st[k] = &c
		}
	}
}

func cancelVar(st state, name, class string) {
	for k, o := range st {
		if (class == "err" && o.errVar == name) || (class == "ok" && o.okVar == name) {
			delete(st, k)
		}
	}
}

// handleAssign opens obligations for acquire/reserve assignments and
// records which result variables guard them.
func (w *walker) handleAssign(s *ast.AssignStmt, st state) {
	w.scanFuncLits(s)
	// Any write to a variable unbinds it from earlier obligations: after
	// `err := journal()`, a subsequent `if err != nil` guards the journal
	// call, not the acquire whose error the name used to hold.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			unbindVar(st, id.Name)
		}
	}
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	key, kind, ok := obligationCall(call)
	if !ok {
		w.dischargeCall(call, st)
		return
	}
	o := &obligation{key: key, kind: kind, pos: call.Pos()}
	switch kind {
	case "acquire": // err := x.acquireCtx(...)
		if len(s.Lhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				o.errVar = id.Name
			}
		}
	case "reserve": // slot, ok := q.reserve(...) or slot, err := ...
		if len(s.Lhs) == 2 {
			if id, ok := s.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
				// Distinguish bool-vs-error by name convention; either way
				// the guard branch idiom cancels it.
				if id.Name == "err" {
					o.errVar = id.Name
				} else {
					o.okVar = id.Name
				}
			}
		}
	}
	st[key] = o
	w.obs = append(w.obs, o)
}

// handleCallExpr covers bare-statement calls: an acquire whose error is
// dropped still opens the obligation; release/commit/abort discharge.
func (w *walker) handleCallExpr(e ast.Expr, st state) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	w.scanFuncLits(call)
	if key, kind, ok := obligationCall(call); ok {
		o := &obligation{key: key, kind: kind, pos: call.Pos()}
		st[key] = o
		w.obs = append(w.obs, o)
		return
	}
	w.dischargeCall(call, st)
}

func (w *walker) discharge(call *ast.CallExpr, st state) {
	w.dischargeCall(call, st)
}

func (w *walker) dischargeCall(call *ast.CallExpr, st state) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := render(sel.X)
	o, open := st[key]
	if !open {
		return
	}
	switch sel.Sel.Name {
	case "release", "Release":
		if o.kind == "acquire" {
			delete(st, key)
		}
	case "commit", "abort", "Commit", "Abort":
		if o.kind == "reserve" {
			delete(st, key)
		}
	}
}

// obligationCall matches the ledger vocabulary.
func obligationCall(call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "acquire", "acquireCtx", "Acquire", "AcquireCtx":
		return render(sel.X), "acquire", true
	case "reserve", "Reserve":
		return render(sel.X), "reserve", true
	}
	return "", "", false
}

// scanFuncLits analyses function literals nested in a statement or
// expression as independent scopes.
func (w *walker) scanFuncLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.walkFunc(lit.Body)
			return false
		}
		return true
	})
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// caseBodies extracts switch clause bodies.
func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// render prints an expression compactly for obligation keys.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
