// Corpus for the ledgerbalance analyzer. The types mirror the daemon's
// ledger vocabulary (acquire/acquireCtx/release; reserve/commit/abort)
// so the analyzer's structural matching fires on them; each seeded
// violation sits next to its corrected form.
package a

import (
	"context"
	"errors"
)

type ledger struct{}

func (l *ledger) acquire(tenant string, demand int64, onQueue func()) error { return nil }
func (l *ledger) acquireCtx(ctx context.Context, tenant string, demand int64, onQueue func()) error {
	return nil
}
func (l *ledger) release(tenant string, demand int64) {}

type wslot struct{}

type queue struct{}

func (q *queue) reserve(tenant string, prio int, force bool) (wslot, bool) { return wslot{}, true }
func (q *queue) commit(sl wslot)                                           {}
func (q *queue) abort(sl wslot)                                            {}

var errShed = errors.New("shed")

// leakOnJournalError is the PR-3-style leak: the happy path releases,
// but the journal-failure return path forgets, so every I/O fault bleeds
// admitted units until the daemon wedges shut.
func leakOnJournalError(l *ledger, journal func() error) error {
	err := l.acquire("t", 10, nil) // want "not released on every path"
	if err != nil {
		return err
	}
	if err := journal(); err != nil {
		return err
	}
	l.release("t", 10)
	return nil
}

// leakOnPanic: an explicit panic is an exit path too; only a deferred
// release covers it.
func leakOnPanic(l *ledger) {
	_ = l.acquire("t", 1, nil) // want "not released on every path"
	panic("boom")
}

// reserveWithoutAbort: the two-phase protocol leaks the slot when the
// journal append fails and nobody aborts.
func reserveWithoutAbort(q *queue, journal func() error) error {
	sl, ok := q.reserve("t", 1, false) // want "neither committed nor aborted"
	if !ok {
		return errShed
	}
	if err := journal(); err != nil {
		return err
	}
	q.commit(sl)
	return nil
}

// deferredRelease is the corrected acquire form: the failure branch of
// the acquire cancels the obligation, the defer covers every later exit
// including panics.
func deferredRelease(l *ledger, work func()) error {
	if err := l.acquireCtx(context.Background(), "t", 5, nil); err != nil {
		return err
	}
	defer l.release("t", 5)
	work()
	return nil
}

// explicitRelease releases on each exit by hand; both paths discharge.
func explicitRelease(l *ledger, work func() error) error {
	if err := l.acquire("t", 5, nil); err != nil {
		return err
	}
	if err := work(); err != nil {
		l.release("t", 5)
		return err
	}
	l.release("t", 5)
	return nil
}

// commitOrAbort is the corrected two-phase form: abort on journal
// failure, commit on success.
func commitOrAbort(q *queue, journal func() error) error {
	sl, ok := q.reserve("t", 2, false)
	if !ok {
		return errShed
	}
	if err := journal(); err != nil {
		q.abort(sl)
		return err
	}
	q.commit(sl)
	return nil
}

// forcedRequeue mirrors recovery's force-reserve: the discarded ok is
// fine because commit follows unconditionally.
func forcedRequeue(q *queue) {
	sl, _ := q.reserve("t", 1, true)
	q.commit(sl)
}
