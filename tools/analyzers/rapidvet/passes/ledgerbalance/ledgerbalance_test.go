package ledgerbalance_test

import (
	"testing"

	"repro/tools/analyzers/rapidvet/analysis/analysistest"
	"repro/tools/analyzers/rapidvet/passes/ledgerbalance"
)

func TestCorpus(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", ledgerbalance.Analyzer)
}
