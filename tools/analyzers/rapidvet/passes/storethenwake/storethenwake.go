// Package storethenwake enforces the PR-7 deposit protocol of the
// event-driven executor: a processor that deposits observable protocol
// state into a peer — an address package through the slot mesh, a data
// payload into a remote buffer, a control-signal increment — must post
// the destination's wake token, and must post it AFTER the deposit. The
// receiver's park path re-examines state only when a token arrives; a
// deposit with no token is a lost wakeup (the receiver parks forever on
// state that is already there), and a token posted before the store is a
// window in which the receiver can wake, observe nothing, and park again
// while the depositor completes the store and posts nothing further.
//
// Deposit sites are matched structurally by the executor's method
// vocabulary, so testdata corpora can define local lookalikes:
//
//   - Put / PutFlagOnly — RMA data deposit into a remote buffer;
//   - TrySend — address-package deposit through the single-slot mesh
//     (only the success path owes a wake, so the analyzer requires a
//     wake somewhere after the call site, which the
//     `if !TrySend { return }` idiom satisfies);
//   - ConsumeAppend — draining the mesh frees slots, which owes each
//     freed sender a wake;
//   - Add on a receiver whose expression mentions ctlRecv — the
//     control-signal counter REC parks on.
//
// The wake post is any call to a method or function named wake/Wake.
// The rule is lexical within one function body: every deposit call must
// be followed (later in the source of the same function) by a wake
// call. This intentionally also rejects the reordered wake-then-store
// shape — a wake that precedes the deposit does not discharge it. A
// `go func(){...}` body is its own actor and pairs deposits with its
// own wakes.
package storethenwake

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"

	"repro/tools/analyzers/rapidvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "storethenwake",
	Doc: "every deposit of observable protocol state (Put/PutFlagOnly/TrySend/ConsumeAppend/ctlRecv.Add) " +
		"must be followed by a wake-token post in the same function; a missing or pre-store wake is the " +
		"PR-7 lost-wakeup bug",
	DefaultPackages: []string{
		"internal/exec",
		"internal/proto",
	},
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// deposit is one protocol-state store owed a subsequent wake.
type deposit struct {
	call *ast.CallExpr
	site string
}

// checkBody pairs deposits with wakes inside one actor's body. Goroutine
// literals are recursed into as separate actors and excluded from the
// enclosing body's pairing.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var deposits []deposit
	var wakes []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				checkBody(pass, lit.Body)
			}
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if site, ok := depositSite(call); ok {
				deposits = append(deposits, deposit{call, site})
			}
			if isWake(call) {
				wakes = append(wakes, call.Pos())
			}
		}
		return true
	})
	for _, d := range deposits {
		if !wakeAfter(d.call.Pos(), wakes) {
			pass.Reportf(d.call.Pos(), "%s deposits observable protocol state but no wake-token post follows in this function: "+
				"a parked receiver re-examines state only after a token, so this deposit can be a lost wakeup "+
				"(post wake AFTER the store; a wake that precedes the store leaves a park-forever window) [PR-7]", d.site)
		}
	}
}

func wakeAfter(pos token.Pos, wakes []token.Pos) bool {
	for _, w := range wakes {
		if w > pos {
			return true
		}
	}
	return false
}

// depositSite matches the executor's deposit vocabulary and names the
// site for the diagnostic.
func depositSite(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Put", "PutFlagOnly", "TrySend", "ConsumeAppend":
		return render(sel.X) + "." + sel.Sel.Name, true
	case "Add":
		if strings.Contains(render(sel.X), "ctlRecv") {
			return render(sel.X) + ".Add", true
		}
	}
	return "", false
}

// isWake matches a call to wake/Wake as method or plain function.
func isWake(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "wake" || fun.Sel.Name == "Wake"
	case *ast.Ident:
		return fun.Name == "wake" || fun.Name == "Wake"
	}
	return false
}

// render prints an expression compactly.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
