package storethenwake_test

import (
	"testing"

	"repro/tools/analyzers/rapidvet/analysis/analysistest"
	"repro/tools/analyzers/rapidvet/passes/storethenwake"
)

func TestCorpus(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", storethenwake.Analyzer)
}
