// Corpus for the storethenwake analyzer. Local lookalikes of the
// executor's deposit vocabulary (Put/PutFlagOnly/TrySend/ConsumeAppend,
// a ctlRecv counter, a wake method); the seeded violations are the PR-7
// lost-wakeup shapes, each next to its corrected form.
package a

type engine struct{ wakers []chan struct{} }

func (e *engine) wake(p int) {}

type buf struct{}

func (b *buf) Put(data []float64, seq int32) bool { return true }
func (b *buf) PutFlagOnly(seq int32) bool         { return true }

type mesh struct{}

func (m *mesh) TrySend(dst, src int, pkg any) bool     { return true }
func (m *mesh) ConsumeAppend(dst int, out []int) []int { return out }

type counter struct{}

func (c *counter) Add(n int32) int32 { return 0 }

type counters struct{ ctlRecv []counter }

// lostWakeup is the PR-7 must-catch: the deposit lands but no token is
// posted, so a receiver already parked on this object sleeps forever.
func lostWakeup(b *buf, data []float64, seq int32) {
	b.Put(data, seq) // want "lost wakeup"
}

// wakeBeforeStore posts the token first: the receiver can wake, see
// nothing, and park again before the store lands — same lost wakeup,
// one reordering away.
func wakeBeforeStore(e *engine, b *buf, dst int, seq int32) {
	e.wake(dst)
	b.PutFlagOnly(seq) // want "lost wakeup"
}

// ctlWithoutWake increments the control counter REC parks on without
// waking the task's processor.
func ctlWithoutWake(c *counters, t int) {
	c.ctlRecv[t].Add(1) // want "lost wakeup"
}

// goroutineActor: a goroutine is its own actor — the spawner's wake does
// not discharge the goroutine's deposit.
func goroutineActor(e *engine, b *buf, seq int32) {
	go func() {
		b.PutFlagOnly(seq) // want "lost wakeup"
	}()
	e.wake(0)
}

// storeThenWake is the corrected order: deposit, then token.
func storeThenWake(e *engine, b *buf, dst int, data []float64, seq int32) {
	b.Put(data, seq)
	e.wake(dst)
}

// trySendIdiom: only the success path owes a wake; the early return on
// a full slot is fine because a wake follows the call site.
func trySendIdiom(e *engine, m *mesh, dst, src int, pkg any) bool {
	if !m.TrySend(dst, src, pkg) {
		return false
	}
	e.wake(dst)
	return true
}

// drainThenWakeSenders mirrors ReadAddresses: consuming frees slots and
// wakes each freed sender.
func drainThenWakeSenders(e *engine, m *mesh, dst int) {
	for _, from := range m.ConsumeAppend(dst, nil) {
		e.wake(from)
	}
}

// ctlThenWake is the corrected control-signal shape.
func ctlThenWake(e *engine, c *counters, t int) {
	c.ctlRecv[t].Add(1)
	e.wake(t)
}
