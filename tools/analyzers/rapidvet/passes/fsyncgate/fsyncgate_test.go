package fsyncgate_test

import (
	"testing"

	"repro/tools/analyzers/rapidvet/analysis/analysistest"
	"repro/tools/analyzers/rapidvet/passes/fsyncgate"
)

func TestCorpus(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", fsyncgate.Analyzer)
}
