// Corpus for the fsyncgate analyzer: the PR-8 failed-fsync shapes. The
// file type mirrors the iofault.File surface (Write/Sync/Close); each
// seeded violation sits next to the poison-and-rotate form the journal
// actually uses.
package a

import "errors"

type file struct{}

func (f *file) Write(p []byte) (int, error) { return len(p), nil }
func (f *file) Sync() error                 { return nil }
func (f *file) Close() error                { return nil }

type jrnl struct {
	f        *file
	poisoned bool
}

func (j *jrnl) poison(err error) { j.poisoned = true }
func (j *jrnl) rotate() *file    { return &file{} }

var errBoom = errors.New("boom")

// discardedSync drops the fsync error on the floor: the one signal that
// acked bytes may be gone is never observed.
func discardedSync(j *jrnl) {
	j.f.Sync() // want "Sync error discarded"
}

// writeInFailureBranch retries on the very fd whose durable state just
// became unknowable.
func writeInFailureBranch(j *jrnl, frame []byte) {
	if err := j.f.Sync(); err != nil {
		j.f.Write(frame) // want "inside the Sync-failure branch"
	}
}

// fdReuseAfterFailedSync is the PR-8 must-catch: the branch poisons but
// falls through, and the next append writes the same fd — it can succeed
// into a file whose earlier acked bytes never reached the platter.
func fdReuseAfterFailedSync(j *jrnl, frame []byte) error {
	if err := j.f.Sync(); err != nil {
		j.poison(err)
	}
	_, err := j.f.Write(frame) // want "reachable after a failed Sync"
	return err
}

// adjacentCheck is the same bug with the two-statement check idiom.
func adjacentCheck(j *jrnl, frame []byte) {
	err := j.f.Sync()
	if err != nil {
		j.f.Write(frame) // want "inside the Sync-failure branch"
	}
}

// poisonAndReturn is the journal's actual contract: on fsync failure,
// poison and stop; nothing touches the fd afterwards.
func poisonAndReturn(j *jrnl, frame []byte) error {
	if _, err := j.f.Write(frame); err != nil {
		j.poison(err)
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.poison(err)
		return err
	}
	_, err := j.f.Write(frame)
	return err
}

// rotateOnFailure is the re-arm path: the failure branch hands the name
// a fresh descriptor, so the later write is on a clean fd.
func rotateOnFailure(j *jrnl, frame []byte) {
	if err := j.f.Sync(); err != nil {
		j.f = j.rotate()
	}
	if _, err := j.f.Write(frame); err != nil {
		j.poison(err)
	}
}

// checkedSync observes the error and terminates: nothing to flag.
func checkedSync(j *jrnl) error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	return nil
}
