// Package fsyncgate enforces the PR-8 failed-fsync contract: once Sync
// returns an error, the kernel may have dropped the dirty pages and
// cleared the error state, so the file descriptor's durable contents are
// unknowable. The only sound continuations are to poison the journal
// (refuse new acks), rotate to a fresh segment (new fd), or close and
// report. What is never sound is writing to the same fd again — the
// write can succeed into a file whose earlier bytes silently never
// reached the platter, which is exactly the acked-but-lost corruption
// the PR-8 chaos soak exists to rule out.
//
// Flagged:
//
//   - a Sync call whose error is discarded (ExprStmt) — an unobserved
//     fsync failure cannot gate anything;
//   - a Write to the same fd inside the Sync-failure branch;
//   - when the Sync-failure branch neither terminates (return/panic) nor
//     replaces the fd (rotate: reassigning the receiver), any later
//     Write or Sync on that fd in the enclosing block.
//
// The fd is identified textually (the receiver expression of the Sync
// call, e.g. "j.f"), matching how the journal names its active segment
// handle; reassigning that expression counts as rotation.
package fsyncgate

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"repro/tools/analyzers/rapidvet/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fsyncgate",
	Doc: "after a failed Sync the fd's durable state is unknown: the failure branch must poison, rotate " +
		"or terminate, and the fd must never be written again (PR-8 journal contract)",
	DefaultPackages: []string{
		"internal/journal",
		"internal/iofault",
	},
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBlock(pass, fn.Body.List)
			// Nested function literals get the same treatment.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBlock(pass, lit.Body.List)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkBlock scans one statement list for the three violation shapes.
func checkBlock(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		// Shape 1: bare Sync with the error dropped on the floor.
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if fd, ok := syncCall(es.X); ok {
				pass.Reportf(es.Pos(), "Sync error discarded on %s: an unobserved fsync failure cannot poison the journal, so a later crash can lose acked bytes — check the error and poison/rotate on failure", fd)
			}
		}

		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			// Recurse into other compound statements so nested blocks are
			// covered (for/select/switch bodies).
			recurse(pass, stmt)
			continue
		}
		fd, ok := syncFailureCheck(ifs, prevStmt(stmts, i))
		if !ok {
			recurse(pass, stmt)
			continue
		}

		// Shape 2: the failure branch itself writes the fd.
		ast.Inspect(ifs.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, name, ok := methodCall(call); ok && recv == fd && (name == "Write" || name == "Sync") {
					pass.Reportf(call.Pos(), "%s.%s inside the Sync-failure branch: after a failed fsync the fd's durable contents are unknown — poison and rotate instead of retrying on the same fd", fd, name)
				}
			}
			return true
		})

		// Shape 3: the branch lets execution continue with the same fd.
		if branchTerminates(ifs.Body) || branchRotates(ifs.Body, fd) {
			recurse(pass, stmt)
			continue
		}
		for _, later := range stmts[i+1:] {
			ast.Inspect(later, func(n ast.Node) bool {
				// A rotation below the check re-legitimises the fd.
				if as, ok := n.(*ast.AssignStmt); ok && assignsTo(as, fd) {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if recv, name, ok := methodCall(call); ok && recv == fd && (name == "Write" || name == "Sync") {
						pass.Reportf(call.Pos(), "%s.%s reachable after a failed Sync on %s: the failure branch neither returns, poisons-and-returns, nor rotates the fd, so this write can land on a file whose acked bytes never became durable (PR-8)", fd, name, fd)
					}
				}
				return true
			})
		}
		recurse(pass, stmt)
	}
}

// recurse walks into compound statements, checking each nested block.
func recurse(pass *analysis.Pass, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		checkBlock(pass, s.List)
	case *ast.IfStmt:
		checkBlock(pass, s.Body.List)
		if s.Else != nil {
			recurse(pass, s.Else)
		}
	case *ast.ForStmt:
		checkBlock(pass, s.Body.List)
	case *ast.RangeStmt:
		checkBlock(pass, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkBlock(pass, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkBlock(pass, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkBlock(pass, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		recurse(pass, s.Stmt)
	}
}

// syncCall matches a call to a niladic method named Sync and returns the
// rendered receiver expression.
func syncCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	recv, name, ok := methodCall(call)
	if !ok || name != "Sync" {
		return "", false
	}
	return recv, true
}

// methodCall splits a call into rendered-receiver and method name.
func methodCall(call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return render(sel.X), sel.Sel.Name, true
}

// syncFailureCheck recognises the two checked-Sync idioms and returns the
// fd expression:
//
//	if err := fd.Sync(); err != nil { ... }
//	err := fd.Sync()            // prev statement
//	if err != nil { ... }
func syncFailureCheck(ifs *ast.IfStmt, prev ast.Stmt) (string, bool) {
	// Inline init form.
	if as, ok := ifs.Init.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if fd, ok := syncCall(as.Rhs[0]); ok && condIsErrNotNil(ifs.Cond, as) {
			return fd, true
		}
	}
	// Adjacent-statement form.
	if ifs.Init == nil && prev != nil {
		if as, ok := prev.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if fd, ok := syncCall(as.Rhs[0]); ok && condIsErrNotNil(ifs.Cond, as) {
				return fd, true
			}
		}
	}
	return "", false
}

// condIsErrNotNil reports whether cond is `v != nil` for a variable
// assigned by as.
func condIsErrNotNil(cond ast.Expr, as *ast.AssignStmt) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	id, ok := be.X.(*ast.Ident)
	if !ok || !isNil(be.Y) {
		return false
	}
	for _, lhs := range as.Lhs {
		if lid, ok := lhs.(*ast.Ident); ok && lid.Name == id.Name {
			return true
		}
	}
	return false
}

// prevStmt returns the statement before index i, if any.
func prevStmt(stmts []ast.Stmt, i int) ast.Stmt {
	if i == 0 {
		return nil
	}
	return stmts[i-1]
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// branchTerminates reports whether the block's last statement leaves the
// function (return, panic, os.Exit, goto out of the block is treated as
// non-terminating).
func branchTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if recv, name, ok := methodCall(call); ok && recv == "os" && name == "Exit" {
				return true
			}
		}
	}
	return false
}

// branchRotates reports whether the block assigns a new value to the fd
// expression (segment rotation hands the name a fresh descriptor).
func branchRotates(b *ast.BlockStmt, fd string) bool {
	rotated := false
	ast.Inspect(b, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && assignsTo(as, fd) {
			rotated = true
			return false
		}
		return true
	})
	return rotated
}

func assignsTo(as *ast.AssignStmt, fd string) bool {
	for _, lhs := range as.Lhs {
		if render(lhs) == fd {
			return true
		}
	}
	return false
}

// render prints an expression compactly for textual fd identity.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
