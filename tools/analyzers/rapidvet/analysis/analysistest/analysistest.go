// Package analysistest runs one analyzer over a testdata corpus and
// checks its diagnostics against `// want "regexp"` expectations, the
// same contract as golang.org/x/tools/go/analysis/analysistest: every
// diagnostic must land on a line carrying a matching want comment, and
// every want comment must be matched by some diagnostic. A corpus
// therefore proves both directions — the analyzer catches each seeded
// violation AND accepts the corrected form sitting next to it.
//
// Corpora live in testdata/src/<pkg>/ under each analyzer package (a
// layout go tooling ignores but `go list` can still resolve as an
// explicit directory pattern, which is how the checker's loader
// type-checks them offline).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/analyzers/rapidvet/analysis"
	"repro/tools/analyzers/rapidvet/checker"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads dir as one package, applies the analyzer (package scoping is
// ignored — corpora live outside any DefaultPackages), and diffs the
// diagnostics against the corpus's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	if !strings.HasPrefix(dir, ".") && !filepath.IsAbs(dir) {
		dir = "./" + dir // a bare relative dir would be misread as an import path
	}
	fset, pkgs, err := checker.Load([]string{dir})
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("corpus %s matched no packages", dir)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, fset, pkg.Files)
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			matched := false
			for _, w := range wants[key] {
				if !w.matched && w.re.MatchString(d.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for key, ws := range wants {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s: no diagnostic matching %q", key, w.re)
				}
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "re" "re"...` comments, keyed file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, lit := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted string literals of a want
// comment's payload.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}
