// Package analysis is a standard-library-only mirror of the core types of
// golang.org/x/tools/go/analysis, sized to what the rapidvet invariant
// suite needs: an Analyzer with a Run function over a type-checked
// package, and positioned Diagnostics.
//
// Why a mirror instead of the real thing: the suite must run in CI with
// no network beyond `go mod download`, and this repository's toolchain
// image carries no module cache for x/tools, so the checker (see
// ../checker) loads packages with `go list -json -export -deps` — gc
// export data plus source type-checking, the same trick the original
// nondeterminism linter used — and drives Analyzers through this API.
// The field and function shapes intentionally match x/tools so that when
// a pinned golang.org/x/tools is available (go.mod already carries the
// gated requirement), each analyzer can be ported by swapping the import
// path and deleting this package, not by rewriting the analyses.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description printed by -help: first the
	// invariant the analyzer enforces, then where the runtime proved that
	// invariant dynamically before it was encoded here.
	Doc string

	// DefaultPackages restricts where the analyzer runs when the checker
	// is invoked over a whole tree (./...): many invariants are contracts
	// of specific packages (wake-token ordering belongs to the executor,
	// plan-byte determinism to the plan producers) and would be noise
	// elsewhere. Empty means every package. Matching is by exact import
	// path or by path suffix (so corpora and forks of the repo keep
	// working when the module path differs). The -scope=off flag and
	// analysistest ignore the restriction.
	DefaultPackages []string

	// Run executes the analyzer on one package. Diagnostics go through
	// pass.Report*; the result value is unused by this suite (it exists
	// for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer run and the checker: one
// type-checked, error-free package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes one diagnostic. The checker owns suppression
	// (//vet:ok, //det:ok) and ordering; analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic at the start of the node.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Reportf(n.Pos(), format, args...)
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
