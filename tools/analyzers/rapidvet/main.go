// Command rapidvet (tools tree entry point) statically enforces the
// runtime's concurrency and durability invariants; see ./checker for the
// suite and DESIGN.md §13 for the invariant table. Identical to
// cmd/rapidvet — this path keeps `go run ./tools/analyzers/rapidvet`
// working next to the repo's other tools.
package main

import "repro/tools/analyzers/rapidvet/checker"

func main() { checker.Main() }
